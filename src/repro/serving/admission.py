"""Online admission control for serving runs.

New sessions are gated *before* they reach the scheduler.  The decision
signal is the same Lyapunov machinery OSCAR already pays for per slot: the
serving loop feeds every slot's realised cost into a
:class:`~repro.core.virtual_queue.VirtualQueue` (``q ← max(0, q + c −
C/T)``), and the queue length — the accumulated budget deficit — is what an
:class:`AdmissionPolicy` sees in its :class:`AdmissionState`.

Policies are registered by name exactly like routing policies
(:mod:`repro.api.registry`): :func:`register_admission_policy` adds new
ones, :func:`make_admission_policy` builds by name with aliases and
did-you-mean suggestions on typos.
"""

from __future__ import annotations

import difflib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Tuple

from repro.serving.arrivals import SessionSpec
from repro.utils.validation import check_non_negative

#: A factory builds a fresh policy from keyword parameters.
AdmissionFactory = Callable[..., "AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionState:
    """What an admission policy observes when a session asks to join.

    ``backlog`` is the Lyapunov virtual-queue length (the budget deficit) as
    of the scheduler's last state merge; ``pending_requests`` the total
    request backlog across shards at that merge; ``active_sessions`` the
    sessions currently admitted and not yet departed.  With a merge period
    of ``k`` slots the signals are up to ``k−1`` slots stale — admission
    sees the network the way a periodically-synchronised control plane
    would, not with shard-local omniscience.

    ``availability`` is the fraction of network elements (nodes + edges)
    currently up, ``1.0`` when no fault schedule is attached — the signal
    the :class:`AvailabilityGate` uses to shed load during outages.
    """

    t: int
    backlog: float
    pending_requests: int
    active_sessions: int
    availability: float = 1.0


class AdmissionPolicy(ABC):
    """Decides, per join attempt, whether a session enters the scheduler."""

    #: Canonical registry name (set by subclasses).
    name: str = "admission"

    def reset(self) -> None:
        """Clear internal state before a fresh run."""

    def on_slot(self, t: int) -> None:
        """Per-slot tick (token refills and the like); called once per slot."""

    @abstractmethod
    def admit(self, spec: SessionSpec, state: AdmissionState) -> bool:
        """Whether the session described by ``spec`` may join."""


@dataclass
class AlwaysAdmit(AdmissionPolicy):
    """Admit every session (the open-door baseline)."""

    name: str = field(default="always", init=False)

    def admit(self, spec: SessionSpec, state: AdmissionState) -> bool:
        return True


@dataclass
class BacklogThreshold(AdmissionPolicy):
    """Admit while the Lyapunov virtual queue is at or below a threshold.

    The virtual queue accumulates budget over-spending, so refusing joins
    while it is long sheds exactly the load that threatens the long-term
    budget constraint — the serving-layer analogue of OSCAR pricing cost by
    queue length.
    """

    threshold: float = 200.0
    name: str = field(default="backlog-threshold", init=False)

    def __post_init__(self) -> None:
        check_non_negative(self.threshold, "threshold")

    def admit(self, spec: SessionSpec, state: AdmissionState) -> bool:
        return state.backlog <= self.threshold


@dataclass
class TokenBucket(AdmissionPolicy):
    """Classic token bucket: ``rate`` tokens per slot, burst capacity ``burst``.

    Each admission consumes one token; joins beyond the refill rate are
    rejected once the burst allowance is spent.  Bounds the session join
    *rate* irrespective of network state.
    """

    rate: float = 1.0
    burst: float = 4.0
    name: str = field(default="token-bucket", init=False)

    def __post_init__(self) -> None:
        check_non_negative(self.rate, "rate")
        check_non_negative(self.burst, "burst")
        self._tokens = float(self.burst)

    def reset(self) -> None:
        self._tokens = float(self.burst)

    def on_slot(self, t: int) -> None:
        self._tokens = min(float(self.burst), self._tokens + float(self.rate))

    def admit(self, spec: SessionSpec, state: AdmissionState) -> bool:
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class AvailabilityGate(AdmissionPolicy):
    """Shed joins while the network is degraded below ``min_availability``.

    During an outage the sessions already admitted keep whatever service
    the surviving elements allow; refusing *new* joins until availability
    recovers keeps the backlog from growing against capacity that is not
    there.  Above the availability floor the gate degenerates to the
    :class:`BacklogThreshold` rule, so fault-free runs behave like the
    default policy.
    """

    min_availability: float = 0.9
    threshold: float = 200.0
    name: str = field(default="availability-gate", init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_availability <= 1.0:
            raise ValueError(
                f"min_availability must be in [0, 1], got {self.min_availability}"
            )
        check_non_negative(self.threshold, "threshold")

    def admit(self, spec: SessionSpec, state: AdmissionState) -> bool:
        if state.availability < self.min_availability:
            return False
        return state.backlog <= self.threshold


class UnknownAdmissionPolicyError(KeyError):
    """Raised when an admission-policy name is not registered."""

    def __init__(self, name: str, known: Iterable[str]):
        known = sorted(known)
        message = (
            f"unknown admission policy {name!r}; "
            f"registered: {', '.join(known)}"
        )
        suggestions = difflib.get_close_matches(name, known, n=3)
        if suggestions:
            message += f" (did you mean {' or '.join(repr(s) for s in suggestions)}?)"
        super().__init__(message)
        self.name = name
        self.known = tuple(known)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]

    def __reduce__(self):
        return (type(self), (self.name, self.known))


def _normalise(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


_FACTORIES: Dict[str, AdmissionFactory] = {}
_ALIASES: Dict[str, str] = {}


def register_admission_policy(
    name: str, factory: AdmissionFactory = None, *, aliases: Iterable[str] = ()
):
    """Register an admission-policy factory (decorator-friendly)."""
    if factory is None:
        def decorator(target):
            register_admission_policy(name, target, aliases=aliases)
            return target
        return decorator
    canonical = _normalise(name)
    _FACTORIES[canonical] = factory
    for alias in aliases:
        _ALIASES[_normalise(alias)] = canonical
    return factory


def canonical_admission_name(name: str) -> str:
    """Resolve aliases/spelling to the canonical admission-policy name."""
    spelling = _normalise(name)
    spelling = _ALIASES.get(spelling, spelling)
    if spelling not in _FACTORIES:
        raise UnknownAdmissionPolicyError(name, _FACTORIES)
    return spelling


def make_admission_policy(name: str, **kwargs: object) -> AdmissionPolicy:
    """Build a fresh admission policy by registered name."""
    return _FACTORIES[canonical_admission_name(name)](**kwargs)


def available_admission_policies() -> Tuple[str, ...]:
    """Canonical names of every registered admission policy (sorted)."""
    return tuple(sorted(_FACTORIES))


register_admission_policy("always", AlwaysAdmit, aliases=("always-admit", "open"))
register_admission_policy(
    "backlog-threshold", BacklogThreshold, aliases=("backlog", "lyapunov")
)
register_admission_policy("token-bucket", TokenBucket, aliases=("token", "bucket"))
register_admission_policy(
    "availability-gate", AvailabilityGate, aliases=("availability", "avail")
)
