"""Figure 6 — impact of the network size.

The paper sweeps the number of nodes while tuning the Waxman parameters so
the average node degree stays near 4, and reports (a) the average EC success
rate and (b) the average qubit usage under the *same* total budget.
Findings to reproduce: success rates drop with network size (routes get
longer), and OSCAR stays ahead of MA and MF at every size.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro import api
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import ComparisonResult

#: Node-count sweep used at paper scale.
PAPER_SIZES = (10, 15, 20, 25, 30)


@dataclass
class Figure6Result:
    """Average success rate and qubit usage as a function of network size."""

    config: ExperimentConfig
    sizes: List[int]
    success_rate: Dict[str, List[float]]
    total_cost: Dict[str, List[float]]
    comparisons: List[ComparisonResult] = field(default_factory=list, repr=False)
    study: Optional["api.StudyResult"] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable payload built on the StudyResult schema."""
        return {
            "figure": "fig6",
            "config": dataclasses.asdict(self.config),
            "sizes": list(self.sizes),
            "success_rate": {k: list(v) for k, v in self.success_rate.items()},
            "total_cost": {k: list(v) for k, v in self.total_cost.items()},
            "study": self.study.to_dict() if self.study is not None else None,
        }

    def format_tables(self) -> str:
        """Both panels of Fig. 6 as plain-text tables."""
        return "\n\n".join(
            [
                format_series_table(
                    "nodes",
                    self.sizes,
                    self.success_rate,
                    title="Fig. 6(a) Average EC success rate vs. network size",
                ),
                format_series_table(
                    "nodes",
                    self.sizes,
                    self.total_cost,
                    title="Fig. 6(b) Average total qubit usage vs. network size",
                ),
            ]
        )


def sweep_sizes_for(config: ExperimentConfig) -> List[int]:
    """The node-count sweep, scaled to the configuration's default size."""
    factors = [size / 20.0 for size in PAPER_SIZES]
    sizes = sorted({max(6, int(round(config.num_nodes * factor))) for factor in factors})
    return sizes


def build_study(
    config: ExperimentConfig, sizes: Sequence[int], name: str = "fig6"
) -> "api.Study":
    """The declarative form of the Fig. 6 sweep (one node-count axis)."""
    return (
        api.Study(name)
        .base(api.Scenario.from_config(config, name=name))
        .over("topology.num_nodes", [int(s) for s in sizes], label="N")
    )


def run(
    config: Optional[ExperimentConfig] = None,
    sizes: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    workers: int = 1,
    store: Union[None, str, "api.ResultStore"] = None,
) -> Figure6Result:
    """Run the network-size sweep with the average degree held near 4."""
    config = (config or ExperimentConfig.paper()).with_run_overrides(trials, seed)
    sizes = list(sizes) if sizes is not None else sweep_sizes_for(config)

    result = build_study(config, sizes).run(workers=workers, store=store)
    return Figure6Result(
        config=config,
        sizes=[int(s) for s in sizes],
        success_rate=result.series("average_success_rate"),
        total_cost=result.series("total_cost"),
        comparisons=result.to_comparisons(),
        study=result,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run(ExperimentConfig.small(), sizes=(8, 12, 16), trials=1)
    print(result.format_tables())


if __name__ == "__main__":  # pragma: no cover
    main()
