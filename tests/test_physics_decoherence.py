"""Direct unit tests for repro.physics.decoherence."""

import math

import pytest

from repro.network.channels import DECOHERENCE_TIME_S
from repro.physics.decoherence import DecoherenceModel
from repro.physics.fidelity import (
    MIXED_STATE_FIDELITY,
    werner_fidelity,
    werner_parameter,
)
from repro.physics.qubit import BellPair


class TestSurvivalFactor:
    def test_defaults_to_paper_memory_time(self):
        assert DecoherenceModel().memory_time == DECOHERENCE_TIME_S

    def test_no_elapsed_time_means_no_decay(self):
        assert DecoherenceModel().survival_factor(0.0) == pytest.approx(1.0)

    def test_one_time_constant_decays_to_1_over_e(self):
        model = DecoherenceModel(memory_time=2.0)
        assert model.survival_factor(2.0) == pytest.approx(math.exp(-1.0))

    def test_monotonically_decreasing_in_time(self):
        model = DecoherenceModel(memory_time=1.0)
        values = [model.survival_factor(t) for t in (0.0, 0.1, 0.5, 1.0, 5.0)]
        assert values == sorted(values, reverse=True)
        assert all(0.0 < v <= 1.0 for v in values)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            DecoherenceModel().survival_factor(-0.1)

    def test_non_positive_memory_time_rejected(self):
        with pytest.raises(ValueError):
            DecoherenceModel(memory_time=0.0)


class TestFidelityAfter:
    def test_matches_werner_parameter_decay(self):
        model = DecoherenceModel(memory_time=1.46)
        fidelity = 0.97
        elapsed = 0.33
        expected = werner_fidelity(
            werner_parameter(fidelity) * model.survival_factor(elapsed)
        )
        assert model.fidelity_after(fidelity, elapsed) == expected

    def test_fidelity_monotonically_decreases_with_storage_time(self):
        model = DecoherenceModel(memory_time=1.0)
        series = [model.fidelity_after(0.95, t) for t in (0.0, 0.2, 0.5, 1.0, 3.0)]
        assert series == sorted(series, reverse=True)

    def test_decays_towards_the_mixed_state_floor(self):
        model = DecoherenceModel(memory_time=0.01)
        assert model.fidelity_after(0.99, 10.0) == pytest.approx(
            MIXED_STATE_FIDELITY, abs=1e-9
        )

    def test_perfect_memory_limit(self):
        model = DecoherenceModel(memory_time=1e12)
        assert model.fidelity_after(0.9, 1.0) == pytest.approx(0.9, abs=1e-9)


class TestEvolvePair:
    def test_pair_fidelity_decays_between_creation_and_now(self):
        model = DecoherenceModel(memory_time=1.0)
        pair = BellPair(node_a="a", node_b="b", fidelity=0.98, created_at=1.0)
        evolved = model.evolve_pair(pair, now=1.5)
        assert evolved.fidelity == model.fidelity_after(0.98, 0.5)
        assert evolved.nodes == pair.nodes

    def test_now_before_creation_clamps_to_zero_elapsed(self):
        model = DecoherenceModel(memory_time=1.0)
        pair = BellPair(node_a="a", node_b="b", fidelity=0.9, created_at=2.0)
        assert model.evolve_pair(pair, now=1.0).fidelity == pytest.approx(0.9)


class TestUsableLifetime:
    def test_roundtrips_through_fidelity_after(self):
        model = DecoherenceModel(memory_time=1.46)
        lifetime = model.usable_lifetime(0.95, threshold=0.7)
        assert lifetime > 0
        assert model.fidelity_after(0.95, lifetime) == pytest.approx(0.7)

    def test_already_below_threshold(self):
        assert DecoherenceModel().usable_lifetime(0.6, threshold=0.7) == 0.0

    def test_threshold_at_mixed_floor_is_infinite(self):
        assert DecoherenceModel().usable_lifetime(0.9, threshold=0.25) == math.inf
