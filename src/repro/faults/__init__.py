"""Fault injection and graceful degradation.

The subsystem has three legs, each usable on its own:

* :mod:`repro.faults.model` — deterministic node/edge outage schedules
  (seeded MTBF/MTTR processes plus scripted one-shots) consulted per slot
  by both simulation backends, with summable :class:`FaultStats`;
* :mod:`repro.faults.supervisor` — :class:`PoolSupervisor`, the retrying
  wrapper around the repository's process pools (dead-worker detection,
  capped exponential backoff, optional hang deadline);
* :mod:`repro.faults.checkpoint` — :class:`RunCheckpoint` periodic run
  snapshots and :class:`InterruptGuard` cooperative SIGINT/SIGTERM
  handling.
"""

from repro.faults.checkpoint import (
    CHECKPOINT_SCHEMA,
    InterruptGuard,
    RunCheckpoint,
    checkpoint_key,
)
from repro.faults.model import (
    HEALTHY,
    FaultModel,
    FaultSchedule,
    FaultState,
    FaultStats,
    Outage,
    fault_availability,
    merge_fault_stats,
)
from repro.faults.supervisor import PoolSupervisor, WorkerPoolError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "HEALTHY",
    "FaultModel",
    "FaultSchedule",
    "FaultState",
    "FaultStats",
    "InterruptGuard",
    "Outage",
    "PoolSupervisor",
    "RunCheckpoint",
    "WorkerPoolError",
    "checkpoint_key",
    "fault_availability",
    "merge_fault_stats",
]
