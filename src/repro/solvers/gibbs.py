"""A generic Gibbs sampler over finite product decision spaces.

The paper's Algorithm 3 performs route selection by Gibbs sampling: in each
iteration one SD pair is picked at random, an alternative route for it is
proposed, and the change is accepted with a logistic probability that
depends on the objective difference and a temperature ``γ``.  This module
implements that procedure for *any* finite product space and objective, so
the same sampler powers route selection, the ablation studies and the unit
tests (which compare it against exhaustive search on tiny spaces).

Note on Eq. (15): the formula as printed in the paper makes *better* moves
*less* likely, contradicting both the surrounding text and standard Gibbs
sampling.  The default here uses the intended orientation
``η = 1 / (1 + exp((f_old − f_new) / γ))``; pass ``paper_sign=True`` to get
the literal printed formula (useful only to demonstrate the discrepancy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

Assignment = Tuple[int, ...]
Objective = Callable[[Assignment], float]


@dataclass(frozen=True)
class GibbsResult:
    """Outcome of a Gibbs-sampling run."""

    best_assignment: Assignment
    best_objective: float
    final_assignment: Assignment
    final_objective: float
    iterations: int
    acceptance_count: int
    objective_trace: Tuple[float, ...] = ()

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals that were accepted."""
        if self.iterations == 0:
            return 0.0
        return self.acceptance_count / self.iterations


def _acceptance_probability(
    new_objective: float, old_objective: float, gamma: float, paper_sign: bool = False
) -> float:
    """:func:`acceptance_probability` without the ``gamma`` validation.

    The sampler's hot loop calls this directly — ``gamma`` is validated once
    in :meth:`GibbsSampler.__post_init__` rather than on every proposal.
    """
    if math.isinf(new_objective) and math.isinf(old_objective):
        return 0.5
    difference = old_objective - new_objective
    if paper_sign:
        difference = new_objective - old_objective
    if math.isinf(difference):
        return 0.0 if difference > 0 else 1.0
    # Clamp to avoid overflow in exp for very large objective gaps.
    difference = max(min(difference / gamma, 700.0), -700.0)
    return 1.0 / (1.0 + math.exp(difference))


def acceptance_probability(
    new_objective: float, old_objective: float, gamma: float, paper_sign: bool = False
) -> float:
    """The logistic acceptance probability ``η`` of Algorithm 3.

    With the corrected sign, a better new objective yields ``η > 1/2`` and
    ``η → 1`` as the improvement grows; as ``γ → 0`` the rule becomes greedy.
    Infinite objectives (infeasible combinations) are handled by saturating
    the probability at 0 or 1.
    """
    check_positive(gamma, "gamma")
    return _acceptance_probability(new_objective, old_objective, gamma, paper_sign)


@dataclass
class GibbsSampler:
    """Gibbs sampling over a finite product space ``S_1 × S_2 × … × S_K``.

    Parameters
    ----------
    gamma:
        Temperature: larger values explore more, smaller values exploit
        (the paper uses ``γ = 500`` with ``V = 2500``).
    iterations:
        Number of single-coordinate proposal steps.
    paper_sign:
        Use the literal sign of the paper's Eq. (15) instead of the intended
        one (see the module docstring).
    track_trace:
        Record the objective after every iteration (useful for convergence
        plots and tests, slightly more memory).
    parallel_groups:
        Optional list of coordinate groups whose members never interact (the
        paper's remark 2 about spatially disjoint SD pairs).  When provided,
        each iteration picks one group uniformly at random and proposes a
        simultaneous change to *every* coordinate in that group; without it,
        the classic single-coordinate Gibbs update of Algorithm 3 is used.
    """

    gamma: float = 500.0
    iterations: int = 100
    paper_sign: bool = False
    track_trace: bool = False
    parallel_groups: Optional[List[List[int]]] = None

    def __post_init__(self) -> None:
        check_positive(self.gamma, "gamma")
        check_positive(self.iterations, "iterations")

    def optimise(
        self,
        space_sizes: Sequence[int],
        objective: Objective,
        seed: SeedLike = None,
        initial: Optional[Assignment] = None,
    ) -> GibbsResult:
        """Run the sampler and return the best assignment visited.

        ``space_sizes[k]`` is the number of choices for coordinate ``k``;
        the objective receives a tuple of chosen indices and must return a
        (possibly ``-inf``) float to maximise.
        """
        rng = as_generator(seed)
        sizes = [int(size) for size in space_sizes]
        if any(size <= 0 for size in sizes):
            raise ValueError("every coordinate must have at least one choice")
        num_coordinates = len(sizes)
        if num_coordinates == 0:
            value = objective(())
            return GibbsResult((), value, (), value, 0, 0)

        if initial is None:
            current = tuple(int(rng.integers(0, size)) for size in sizes)
        else:
            current = tuple(int(v) for v in initial)
            if len(current) != num_coordinates:
                raise ValueError("initial assignment has the wrong length")
            for value, size in zip(current, sizes):
                if not 0 <= value < size:
                    raise ValueError("initial assignment out of range")

        current_objective = objective(current)
        best = current
        best_objective = current_objective
        acceptance_count = 0
        trace: List[float] = []

        groups: Optional[List[List[int]]] = None
        if self.parallel_groups is not None:
            groups = [list(group) for group in self.parallel_groups if group]
            flat = sorted(index for group in groups for index in group)
            if flat != list(range(num_coordinates)):
                raise ValueError("parallel_groups must partition the coordinates")

        movable_all = [k for k in range(num_coordinates) if sizes[k] > 1]

        for _ in range(self.iterations):
            proposal = list(current)
            changed_any = False
            if groups is None:
                # Classic Algorithm-3 update: one random SD pair per iteration.
                if movable_all:
                    coordinate = movable_all[int(rng.integers(0, len(movable_all)))]
                    alternatives = [
                        c for c in range(sizes[coordinate]) if c != proposal[coordinate]
                    ]
                    proposal[coordinate] = alternatives[int(rng.integers(0, len(alternatives)))]
                    changed_any = True
            else:
                # Parallel update: every coordinate of one randomly chosen
                # group of mutually non-interacting requests moves at once.
                group = groups[int(rng.integers(0, len(groups)))]
                for coordinate in group:
                    if sizes[coordinate] <= 1:
                        continue
                    alternatives = [
                        c for c in range(sizes[coordinate]) if c != proposal[coordinate]
                    ]
                    proposal[coordinate] = alternatives[int(rng.integers(0, len(alternatives)))]
                    changed_any = True
            if not changed_any:
                if self.track_trace:
                    trace.append(current_objective)
                continue
            proposal_tuple = tuple(proposal)
            proposal_objective = objective(proposal_tuple)
            eta = _acceptance_probability(
                proposal_objective, current_objective, self.gamma, self.paper_sign
            )
            if rng.random() < eta:
                current = proposal_tuple
                current_objective = proposal_objective
                acceptance_count += 1
            if current_objective > best_objective:
                best = current
                best_objective = current_objective
            if self.track_trace:
                trace.append(current_objective)

        return GibbsResult(
            best_assignment=best,
            best_objective=best_objective,
            final_assignment=current,
            final_objective=current_objective,
            iterations=self.iterations,
            acceptance_count=acceptance_count,
            objective_trace=tuple(trace),
        )


def exhaustive_optimise(
    space_sizes: Sequence[int], objective: Objective
) -> Tuple[Assignment, float]:
    """Brute-force maximisation over the product space (for small instances)."""
    sizes = [int(size) for size in space_sizes]
    if any(size <= 0 for size in sizes):
        raise ValueError("every coordinate must have at least one choice")
    if not sizes:
        return (), objective(())
    best: Optional[Assignment] = None
    best_objective = -math.inf
    assignment = [0] * len(sizes)
    while True:
        candidate = tuple(assignment)
        value = objective(candidate)
        if best is None or value > best_objective:
            best = candidate
            best_objective = value
        # Increment the mixed-radix counter.
        position = len(sizes) - 1
        while position >= 0:
            assignment[position] += 1
            if assignment[position] < sizes[position]:
                break
            assignment[position] = 0
            position -= 1
        if position < 0:
            break
    assert best is not None
    return best, best_objective
