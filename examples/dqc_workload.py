"""Distributed-quantum-computing workload: hotspot traffic and fidelity targets.

The paper motivates entanglement routing with distributed quantum computing
(DQC): small quantum computers offload work to bigger ones over the QDN, so
the request pattern is skewed towards a few "server" nodes and applications
may additionally require a minimum end-to-end fidelity before they accept a
teleported qubit.  This example models exactly that scenario:

* a hotspot request process sends 70% of EC requests towards the two
  highest-degree nodes (the DQC servers),
* a fidelity-aware wrapper around OSCAR refuses routes whose end-to-end
  Werner fidelity would fall below the application's target,
* the resulting teleportation fidelity a DQC application would observe is
  reported alongside the routing metrics.

Run it with::

    python examples/dqc_workload.py
"""

from __future__ import annotations

from repro.core.fidelity import FidelityAwarePolicy, RouteFidelityModel
from repro.core.oscar import OscarPolicy
from repro.experiments.reporting import format_table
from repro.network.topology import waxman_topology_with_degree
from repro.physics.teleportation import teleportation_fidelity_with_noisy_pair
from repro.simulation.engine import simulate_policies
from repro.workload.requests import HotspotRequestProcess
from repro.workload.traces import generate_trace


def main() -> None:
    horizon = 30
    total_budget = 750.0
    fidelity_target = 0.75

    graph = waxman_topology_with_degree(num_nodes=14, target_degree=4.0, seed=11)
    servers = sorted(graph.nodes, key=graph.degree, reverse=True)[:2]
    print(f"Network: {graph.describe()}")
    print(f"DQC servers (hotspots): {servers}")

    trace = generate_trace(
        graph,
        horizon=horizon,
        request_process=HotspotRequestProcess(
            min_pairs=1, max_pairs=4, hotspot_probability=0.7, hotspots=tuple(servers)
        ),
        seed=12,
    )

    fidelity_model = RouteFidelityModel(link_fidelity=0.96)
    policies = [
        OscarPolicy(total_budget=total_budget, horizon=horizon, trade_off_v=2500.0,
                    gamma=500.0, gibbs_iterations=25, name="OSCAR"),
        FidelityAwarePolicy(
            base=OscarPolicy(total_budget=total_budget, horizon=horizon, trade_off_v=2500.0,
                             gamma=500.0, gibbs_iterations=25),
            fidelity_model=fidelity_model,
            fidelity_target=fidelity_target,
        ),
    ]

    results = simulate_policies(graph, trace, policies, total_budget=total_budget, seed=13)

    rows = []
    for name, result in results.items():
        served = result.served_fraction()
        rate = result.average_success_rate()
        # Estimate the fidelity a DQC application would see when teleporting
        # through the established ECs (served requests only).
        pair_fidelities = []
        for record in result.records:
            pair_fidelities.extend(f for f in record.realized_fidelities if f > 0)
        mean_pair_fidelity = sum(pair_fidelities) / len(pair_fidelities) if pair_fidelities else 0.0
        teleport_fidelity = (
            teleportation_fidelity_with_noisy_pair(mean_pair_fidelity) if pair_fidelities else 0.0
        )
        rows.append([
            name,
            round(rate, 4),
            round(served, 4),
            round(result.total_cost, 1),
            round(mean_pair_fidelity, 4),
            round(teleport_fidelity, 4),
        ])

    print()
    print(
        format_table(
            ["policy", "avg EC success", "served fraction", "qubits spent",
             "mean EC fidelity", "teleport fidelity"],
            rows,
            title=f"DQC hotspot workload (fidelity target {fidelity_target})",
        )
    )
    print()
    print("The fidelity-aware policy serves slightly fewer requests (long routes")
    print("below the target are rejected) but every EC it establishes meets the")
    print("application's fidelity requirement.")


if __name__ == "__main__":
    main()
