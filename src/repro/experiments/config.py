"""Experiment configuration.

:class:`ExperimentConfig` captures every parameter of the paper's default
simulation setup (Sec. V-A) in one frozen-ish dataclass, provides factory
methods for the network, the workload and the policies, and offers scaled
presets: :meth:`ExperimentConfig.paper` reproduces the published setting
(20 nodes, T=200, C=5000, 5 trials) while :meth:`ExperimentConfig.small`
and :meth:`ExperimentConfig.tiny` shrink the horizon and network so the
full pipeline can run inside unit tests and CI benchmarks.
"""

from __future__ import annotations

import dataclasses
import difflib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only (lazy import at runtime)
    from repro.faults import FaultModel, FaultSchedule
    from repro.serving.scheduler import ServingModel

from repro.core.baselines import (
    MyopicAdaptivePolicy,
    MyopicFixedPolicy,
    ShortestRouteUniformPolicy,
    UnconstrainedPolicy,
)
from repro.core.oscar import OscarPolicy
from repro.core.policy import RoutingPolicy
from repro.network.channels import DECOHERENCE_TIME_S
from repro.network.graph import QDNGraph
from repro.simulation.engine import BACKEND_KINDS
from repro.simulation.eventsim import TimingModel
from repro.simulation.physical import ENGINE_KINDS, PhysicalModel
from repro.network.resources import ResourceProcess, StaticResources
from repro.network.store import TopologyStore, default_topology_store
from repro.network.topology import TOPOLOGY_KINDS, CapacityRanges, build_topology
from repro.utils.rng import SeedLike, derive_seed
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.requests import RequestProcess, UniformRequestProcess
from repro.workload.traces import WorkloadTrace, generate_trace
from repro.guard.invariants import GUARD_LEVELS
from repro.telemetry.tracer import TELEMETRY_LEVELS, TelemetryModel


class ConfigError(ValueError):
    """One invalid :class:`ExperimentConfig` field.

    Subclasses :class:`ValueError` so historical ``except ValueError``
    call sites (and tests) keep working, and keeps its message as the sole
    constructor argument so it pickles across worker-pool boundaries.
    """


def _did_you_mean(value: str, options: Sequence[str]) -> str:
    """A ``"; did you mean 'x'?"`` suffix, or empty when nothing is close."""
    matches = difflib.get_close_matches(str(value), list(options), n=1)
    return f"; did you mean {matches[0]!r}?" if matches else ""


@contextmanager
def _config_errors() -> Iterator[None]:
    """Re-type any ValueError raised in the block as :class:`ConfigError`."""
    try:
        yield
    except ConfigError:
        raise
    except ValueError as exc:
        raise ConfigError(str(exc)) from None


@dataclass
class ExperimentConfig:
    """All knobs of one experiment, defaulting to the paper's Section V-A values."""

    # --- topology (Sec. V-A1/A2) ---------------------------------------- #
    topology_kind: str = "waxman"
    num_nodes: int = 20
    area: float = 100.0
    waxman_alpha: float = 0.5
    target_degree: float = 4.0
    qubit_capacity_min: int = 10
    qubit_capacity_max: int = 16
    channel_capacity_min: int = 5
    channel_capacity_max: int = 8

    # --- link physics (Sec. V-A2) ---------------------------------------- #
    attempt_success: float = 2.0e-4
    attempts_per_slot: int = 4000

    # --- workload and budget (Sec. V-A2) --------------------------------- #
    horizon: int = 200
    total_budget: float = 5000.0
    min_pairs: int = 1
    max_pairs: int = 5

    # --- candidate routes ------------------------------------------------- #
    num_candidate_routes: int = 4
    max_extra_hops: int = 2

    # --- OSCAR parameters (Sec. V-A2) ------------------------------------- #
    trade_off_v: float = 2500.0
    initial_queue: float = 10.0
    gamma: float = 500.0
    gibbs_iterations: int = 60
    exhaustive_limit: int = 64

    # --- solver fast path -------------------------------------------------- #
    # ``use_kernel`` runs every per-slot solve on the compiled slot kernel
    # (incremental Gibbs evaluation, warm-started dual solves); disable it to
    # cross-check against the legacy per-combination object path.
    # ``dual_tolerance`` is the kernel's relative duality-gap early-stop
    # threshold (0 replays the legacy fixed iteration schedule).
    # ``kernel_cache`` re-binds one compiled kernel structure across slots
    # and whole horizons (warm-start duals carried slot-to-slot); disable it
    # to benchmark the recompile-per-slot kernel path.
    # ``solve_deadline`` caps each per-slot solve at a deterministic number
    # of combination evaluations; past it the selector ladder degrades
    # exhaustive → Gibbs → greedy (0 = unlimited, the historical behaviour).
    use_kernel: bool = True
    dual_tolerance: float = 1e-4
    kernel_cache: bool = True
    solve_deadline: int = 0

    # --- physical layer (repro.simulation.physical) ------------------------ #
    # ``physical_enabled`` switches on the physical delivery co-simulation:
    # every realised EC additionally runs its swap/purify/decohere chain and
    # the records carry delivered fidelities.  Disabled (the default) the
    # simulators consume exactly the historical random streams, so every
    # existing figure stays byte-identical.  ``physical_fidelity_constrained``
    # additionally wraps registry-built policies so a request only counts as
    # served when its route can deliver ``physical_fidelity_target``.
    physical_enabled: bool = False
    physical_swap_success: float = 1.0
    physical_link_fidelity: float = 0.98
    physical_memory_time: float = DECOHERENCE_TIME_S
    physical_dwell_fraction: float = 0.5
    physical_purify_rounds: int = 0
    physical_cutoff_fidelity: float = 0.0
    physical_fidelity_target: float = 0.0
    physical_fidelity_constrained: bool = False
    physical_engine: str = "vectorized"

    # --- timing / simulation backend (repro.simulation.eventsim) ----------- #
    # ``backend`` selects the simulation backend: the paper's slotted
    # abstraction (default) or the event-driven co-simulation with classical
    # signaling latency.  ``signaling_latency_s`` is the default one-way
    # classical latency per edge; ``edge_latency_s`` overrides it per edge
    # (keys are ``repro.simulation.eventsim.edge_latency_key`` strings so the
    # map survives JSON round trips); ``slot_guard_time_s`` extends each slot
    # beyond the attempt window — the slack available for classical message
    # round-trips.  With zero latency the event backend reproduces the
    # slotted backend's realised outcomes exactly.
    backend: str = "slotted"
    signaling_latency_s: float = 0.0
    edge_latency_s: Optional[Dict[str, float]] = None
    slot_guard_time_s: float = 0.0

    # --- serving layer (repro.serving) ------------------------------------- #
    # ``serving_enabled`` switches a scenario from the closed batch system to
    # the open serving system: sessions stream in (``serving_arrival_kind``
    # "poisson" at ``serving_arrival_rate`` joins/slot, or "trace" replaying
    # ``serving_arrival_trace`` per-slot join counts), each issuing
    # ``serving_session_rate`` EC requests/slot for a geometric lifetime of
    # mean ``serving_session_lifetime`` slots (renewing with probability
    # ``serving_renew_probability``).  Joins are gated by the
    # ``serving_admission`` policy (see repro.serving.admission); active
    # sessions are partitioned over ``serving_shards`` consistent-hash shards
    # whose state merges every ``serving_merge_every`` slots, optionally on
    # ``serving_shard_workers`` worker processes — byte-identical for any
    # shard layout under a fixed seed.
    serving_enabled: bool = False
    serving_arrival_kind: str = "poisson"
    serving_arrival_rate: float = 0.5
    serving_arrival_trace: Optional[List[int]] = None
    serving_session_rate: float = 2.0
    serving_session_lifetime: float = 20.0
    serving_renew_probability: float = 0.0
    serving_session_budget: float = 8.0
    serving_admission: str = "backlog-threshold"
    serving_admission_threshold: float = 200.0
    serving_token_rate: float = 1.0
    serving_token_burst: float = 4.0
    serving_shards: int = 1
    serving_merge_every: int = 1
    serving_shard_workers: int = 1
    serving_shard_timeout_s: float = 300.0
    serving_min_availability: float = 0.9

    # --- fault injection (repro.faults) ------------------------------------ #
    # ``fault_enabled`` switches on the deterministic fault-injection layer:
    # nodes and edges suffer transient outages (exponential up-times with
    # mean ``fault_node_mtbf``/``fault_edge_mtbf`` slots, down-times with
    # mean ``fault_mttr`` slots; 0 disables that element class) plus the
    # scripted one-shots in ``fault_outages`` (each a JSON-friendly
    # ``[kind, element, start, duration]`` entry).  The schedule is derived
    # from its own spawned seed, so fault-free runs consume exactly the
    # historical random streams and stay byte-identical.  With
    # ``fault_aware`` (default) policies see the degraded topology — routes
    # over failed elements leave the candidate sets; blind mode keeps the
    # full sets and loses the affected requests at realization time.
    fault_enabled: bool = False
    fault_node_mtbf: float = 0.0
    fault_edge_mtbf: float = 0.0
    fault_mttr: float = 5.0
    fault_outages: Optional[List[List[object]]] = None
    fault_aware: bool = True

    # --- runtime invariant guard (repro.guard) ----------------------------- #
    # ``guard_level`` arms the runtime invariant guard: "off" (the default)
    # builds no guard at all and keeps every table and benchmark
    # byte-identical to the unguarded build; "cheap" runs O(1) per-slot
    # accounting checks; "strict" additionally recomputes constraint rows,
    # the virtual-queue recursion, kernel dual bounds and fault-schedule
    # accounting.  The guard is observational — any level produces identical
    # results or raises.  ``REPRO_GUARD`` overrides the level at run time.
    guard_level: str = "off"

    # --- telemetry (repro.telemetry) ---------------------------------------- #
    # ``telemetry_level`` arms the observability layer: "off" (the default)
    # builds no tracer at all and keeps every table and benchmark
    # byte-identical to the uninstrumented build; "light" aggregates
    # per-span wall/CPU profiles and the metrics registry; "full"
    # additionally keeps a bounded ring of ``telemetry_span_ring`` span
    # events (pid/tid stamped) for Chrome-trace export and crash-bundle
    # attachment.  Telemetry is observational and draws no randomness —
    # any level produces identical results.  ``REPRO_TELEMETRY`` overrides
    # the level at run time, exactly like ``REPRO_GUARD``.
    telemetry_level: str = "off"
    telemetry_span_ring: int = 2048

    # --- experiment bookkeeping ------------------------------------------- #
    trials: int = 5
    base_seed: int = 2024
    realize: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ExperimentConfig":
        """Check every field; raises :class:`ConfigError` on the first problem.

        Also invoked by ``__post_init__`` so an ``ExperimentConfig`` can
        never exist in an invalid state, and re-invoked (idempotent, cheap)
        by the Scenario/Study/CLI entry points so configurations rebuilt
        from dictionaries or mutated by hand fail early with one exception
        type.  :class:`ConfigError` subclasses :class:`ValueError` and is
        picklable, so it crosses worker-pool boundaries intact.
        """
        if self.topology_kind not in TOPOLOGY_KINDS:
            raise ConfigError(
                f"unknown topology kind {self.topology_kind!r}; "
                f"choose from {', '.join(TOPOLOGY_KINDS)}"
                f"{_did_you_mean(self.topology_kind, TOPOLOGY_KINDS)}"
            )
        with _config_errors():
            check_positive(self.num_nodes, "num_nodes")
            check_positive(self.horizon, "horizon")
            check_positive(self.trials, "trials")
            check_positive(self.total_budget, "total_budget")
            check_positive(self.attempts_per_slot, "attempts_per_slot")
            check_positive(self.attempt_success, "attempt_success")
            check_positive(self.num_candidate_routes, "num_candidate_routes")
            check_non_negative(self.max_extra_hops, "max_extra_hops")
        if self.min_pairs < 1 or self.max_pairs < self.min_pairs:
            raise ConfigError(
                f"request-pair range [{self.min_pairs}, {self.max_pairs}] is "
                "empty; need 1 <= min_pairs <= max_pairs"
            )
        if self.physical_engine not in ENGINE_KINDS:
            raise ConfigError(
                f"unknown physical engine {self.physical_engine!r}; "
                f"choose from {', '.join(ENGINE_KINDS)}"
                f"{_did_you_mean(self.physical_engine, ENGINE_KINDS)}"
            )
        if self.backend not in BACKEND_KINDS:
            raise ConfigError(
                f"unknown simulation backend {self.backend!r}; "
                f"choose from {', '.join(BACKEND_KINDS)}"
                f"{_did_you_mean(self.backend, BACKEND_KINDS)}"
            )
        if self.guard_level not in GUARD_LEVELS:
            raise ConfigError(
                f"unknown guard level {self.guard_level!r}; "
                f"choose from {', '.join(GUARD_LEVELS)}"
                f"{_did_you_mean(self.guard_level, GUARD_LEVELS)}"
            )
        if self.telemetry_level not in TELEMETRY_LEVELS:
            raise ConfigError(
                f"unknown telemetry level {self.telemetry_level!r}; "
                f"choose from {', '.join(TELEMETRY_LEVELS)}"
                f"{_did_you_mean(self.telemetry_level, TELEMETRY_LEVELS)}"
            )
        if int(self.telemetry_span_ring) <= 0:
            raise ConfigError(
                f"telemetry_span_ring must be positive, got {self.telemetry_span_ring}"
            )
        with _config_errors():
            check_non_negative(self.signaling_latency_s, "signaling_latency_s")
            check_non_negative(self.slot_guard_time_s, "slot_guard_time_s")
            if self.edge_latency_s:
                for key, value in self.edge_latency_s.items():
                    check_non_negative(value, f"edge_latency_s[{key!r}]")
        if self.solve_deadline < 0:
            raise ConfigError(
                f"solve_deadline must be non-negative, got {self.solve_deadline}"
            )
        if self.serving_enabled and self.serving_arrival_rate < 0:
            raise ConfigError(
                "serving_arrival_rate must be non-negative, got "
                f"{self.serving_arrival_rate}"
            )
        if self.fault_enabled and self.fault_mttr <= 0:
            raise ConfigError(
                f"fault_mttr must be positive, got {self.fault_mttr}"
            )
        with _config_errors():
            if self.serving_enabled:
                # Building the model validates every serving field (arrival
                # kind, admission name, shard/merge counts) in one place.
                self.serving_model()
            if self.fault_enabled:
                # Likewise: building the fault model validates the fault
                # fields (MTBF/MTTR signs, scripted-outage shapes).
                self.fault_model()
        return self

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper's default configuration (Sec. V-A2)."""
        return cls()

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """A scaled-down configuration for benchmarks (minutes → seconds).

        The budget-per-slot ratio, Lyapunov parameters and workload
        intensity match the paper; only the horizon, network size and trial
        count shrink.
        """
        return cls(
            num_nodes=12,
            horizon=40,
            total_budget=1000.0,
            trials=2,
            gibbs_iterations=25,
            max_pairs=4,
            trade_off_v=2500.0,
            gamma=500.0,
        )

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """The smallest end-to-end configuration, for unit tests."""
        return cls(
            num_nodes=8,
            horizon=10,
            total_budget=250.0,
            trials=1,
            gibbs_iterations=10,
            max_pairs=3,
            num_candidate_routes=3,
        )

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """A copy of this configuration with selected fields replaced."""
        return dataclasses.replace(self, **overrides)

    def with_run_overrides(
        self, trials: Optional[int] = None, seed: Optional[int] = None
    ) -> "ExperimentConfig":
        """Apply the optional trial-count / base-seed overrides every
        experiment entry point accepts (``None`` keeps the current value)."""
        overrides: Dict[str, int] = {}
        if trials is not None:
            overrides["trials"] = int(trials)
        if seed is not None:
            overrides["base_seed"] = int(seed)
        return self.with_overrides(**overrides) if overrides else self

    # ------------------------------------------------------------------ #
    # Derived factories
    # ------------------------------------------------------------------ #
    @property
    def per_slot_budget(self) -> float:
        """``C / T``."""
        return self.total_budget / self.horizon

    def capacity_ranges(self) -> CapacityRanges:
        """The qubit/channel capacity sampling ranges."""
        return CapacityRanges(
            qubit_min=self.qubit_capacity_min,
            qubit_max=self.qubit_capacity_max,
            channel_min=self.channel_capacity_min,
            channel_max=self.channel_capacity_max,
        )

    def build_graph(
        self,
        seed: SeedLike = None,
        store: Optional[TopologyStore] = default_topology_store,
    ) -> QDNGraph:
        """Generate one topology of the configured family (Waxman by default).

        Generation is deterministic in the configuration and the integer
        seed, so identical requests are served from the process-wide
        :class:`~repro.network.store.TopologyStore` instead of re-running
        the Waxman/bisection construction — every worker of a sweep used to
        rebuild the same graph once per policy unit and study point.  Pass
        ``store=None`` (or a non-integer seed, e.g. a live generator) to
        bypass the store; stored graphs are shared and must not be mutated.
        Subclasses bypass the store automatically: the cache key covers the
        base class's topology fields, and an overridden factory could depend
        on state the key does not see.
        """
        if seed is None:
            seed = derive_seed(self.base_seed, "topology")

        def build() -> QDNGraph:
            return build_topology(
                self.topology_kind,
                num_nodes=self.num_nodes,
                target_degree=self.target_degree,
                alpha=self.waxman_alpha,
                area=self.area,
                capacities=self.capacity_ranges(),
                attempts_per_slot=self.attempts_per_slot,
                seed=seed,
            )

        if (
            store is None
            or type(self) is not ExperimentConfig
            or not isinstance(seed, int)
        ):
            return build()
        key = (
            "graph",
            self.topology_kind,
            self.num_nodes,
            self.area,
            self.waxman_alpha,
            self.target_degree,
            self.qubit_capacity_min,
            self.qubit_capacity_max,
            self.channel_capacity_min,
            self.channel_capacity_max,
            self.attempt_success,
            self.attempts_per_slot,
            int(seed),
        )
        return store.graph_for(key, build)

    def physical_model(self) -> Optional[PhysicalModel]:
        """The configured physical-layer model, or ``None`` when disabled.

        This is the single place the flat ``physical_*`` fields become the
        :class:`~repro.simulation.physical.PhysicalModel` the simulators
        consume; the slot length (``attempts_per_slot`` × attempt duration)
        comes from the link-physics section so the memory dwell matches the
        configured slot.
        """
        if not self.physical_enabled:
            return None
        return PhysicalModel(
            swap_success=self.physical_swap_success,
            link_fidelity=self.physical_link_fidelity,
            memory_time=self.physical_memory_time,
            attempts_per_slot=self.attempts_per_slot,
            dwell_fraction=self.physical_dwell_fraction,
            purify_rounds=self.physical_purify_rounds,
            cutoff_fidelity=self.physical_cutoff_fidelity,
            fidelity_target=self.physical_fidelity_target,
            engine=self.physical_engine,
        )

    def timing_model(self) -> TimingModel:
        """The classical-signaling timing model of the ``timing`` fields.

        This is the single place the flat ``backend``-adjacent fields become
        the :class:`~repro.simulation.eventsim.TimingModel` the simulators
        consume.  Always defined (the slotted backend uses only its
        ``guard_time``, for slot timestamps).
        """
        return TimingModel(
            signaling_latency_s=self.signaling_latency_s,
            edge_latency_s=dict(self.edge_latency_s) if self.edge_latency_s else None,
            guard_time=self.slot_guard_time_s,
        )

    def serving_model(self) -> Optional["ServingModel"]:
        """The configured serving-layer model, or ``None`` when disabled.

        The single place the flat ``serving_*`` fields become the
        :class:`~repro.serving.scheduler.ServingModel` the
        :class:`~repro.serving.scheduler.ServingSimulator` consumes;
        constructing it validates every serving field.
        """
        if not self.serving_enabled:
            return None
        from repro.serving.scheduler import ServingModel

        return ServingModel(
            arrival_kind=self.serving_arrival_kind,
            arrival_rate=self.serving_arrival_rate,
            arrival_trace=(
                tuple(self.serving_arrival_trace)
                if self.serving_arrival_trace is not None
                else None
            ),
            session_rate=self.serving_session_rate,
            session_lifetime=self.serving_session_lifetime,
            renew_probability=self.serving_renew_probability,
            session_budget=self.serving_session_budget,
            admission=self.serving_admission,
            admission_threshold=self.serving_admission_threshold,
            token_rate=self.serving_token_rate,
            token_burst=self.serving_token_burst,
            shards=self.serving_shards,
            merge_every=self.serving_merge_every,
            shard_workers=self.serving_shard_workers,
            shard_timeout_s=self.serving_shard_timeout_s,
            min_availability=self.serving_min_availability,
        )

    def fault_model(self) -> Optional["FaultModel"]:
        """The configured fault model, or ``None`` when disabled.

        The single place the flat ``fault_*`` fields become the
        :class:`~repro.faults.FaultModel` the simulators consume;
        constructing it validates every fault field.
        """
        if not self.fault_enabled:
            return None
        from repro.faults import FaultModel

        return FaultModel(
            node_mtbf=self.fault_node_mtbf,
            edge_mtbf=self.fault_edge_mtbf,
            mttr=self.fault_mttr,
            outages=tuple(
                tuple(entry) for entry in (self.fault_outages or ())
            ),
            aware=self.fault_aware,
        )

    def telemetry_model(self) -> Optional[TelemetryModel]:
        """The configured telemetry model, or ``None`` when configured off.

        The single place the flat ``telemetry_*`` fields become the
        :class:`~repro.telemetry.TelemetryModel` the simulators consume.
        The ``REPRO_TELEMETRY`` override is deliberately *not* applied
        here — it takes effect at :meth:`repro.telemetry.Tracer.build`
        time (which also arms a ``None`` model), so scenario dictionaries
        and content-addressed store keys never depend on the variable.
        """
        if self.telemetry_level == "off":
            return None
        return TelemetryModel(
            level=self.telemetry_level,
            span_ring=int(self.telemetry_span_ring),
        )

    def build_faults(
        self, graph: QDNGraph, seed: SeedLike, horizon: Optional[int] = None
    ) -> Optional["FaultSchedule"]:
        """The precomputed fault schedule of one run (``None`` when disabled).

        ``seed`` must be the run's dedicated fault seed
        (``derive_seed(base_seed, "faults", trial)``) so schedules are
        byte-identical across serial/parallel execution and worker layouts.
        """
        model = self.fault_model()
        if model is None:
            return None
        from repro.faults import FaultSchedule

        return FaultSchedule.build(
            model, graph, seed, self.horizon if horizon is None else int(horizon)
        )

    def request_process(self) -> RequestProcess:
        """The paper's uniform EC request process."""
        return UniformRequestProcess(min_pairs=self.min_pairs, max_pairs=self.max_pairs)

    def resource_process(self) -> ResourceProcess:
        """Resource availability process (full availability by default)."""
        return StaticResources()

    def build_trace(
        self,
        graph: QDNGraph,
        seed: SeedLike = None,
        store: Optional[TopologyStore] = default_topology_store,
    ) -> WorkloadTrace:
        """Sample one frozen workload trace for ``graph``.

        Traces are frozen (immutable) realisations, deterministic in the
        workload configuration, the graph and the integer seed — so when
        ``graph`` came out of the :class:`TopologyStore` the trace (and its
        candidate-route tables, the expensive part) is memoised there too.
        Non-integer seeds, foreign graphs, subclasses (whose overridden
        request/resource processes the key cannot see) or ``store=None``
        bypass the store.
        """
        if seed is None:
            seed = derive_seed(self.base_seed, "trace")

        def build() -> WorkloadTrace:
            return generate_trace(
                graph,
                horizon=self.horizon,
                request_process=self.request_process(),
                resource_process=self.resource_process(),
                num_candidate_routes=self.num_candidate_routes,
                max_extra_hops=self.max_extra_hops,
                seed=seed,
            )

        token = store.token_for(graph) if store is not None else None
        if (
            token is None
            or type(self) is not ExperimentConfig
            or not isinstance(seed, int)
        ):
            return build()
        key = (
            "trace",
            token,
            self.horizon,
            self.min_pairs,
            self.max_pairs,
            self.num_candidate_routes,
            self.max_extra_hops,
            int(seed),
        )
        return store.trace_for(key, build)

    # ------------------------------------------------------------------ #
    # Policies
    # ------------------------------------------------------------------ #
    def make_oscar(self, **overrides) -> OscarPolicy:
        """The OSCAR policy configured per this experiment."""
        parameters = dict(
            total_budget=self.total_budget,
            horizon=self.horizon,
            trade_off_v=self.trade_off_v,
            initial_queue=self.initial_queue,
            gamma=self.gamma,
            gibbs_iterations=self.gibbs_iterations,
            exhaustive_limit=self.exhaustive_limit,
            use_kernel=self.use_kernel,
            dual_tolerance=self.dual_tolerance,
            kernel_cache=self.kernel_cache,
            solve_deadline=self.solve_deadline,
        )
        parameters.update(overrides)
        return OscarPolicy(**parameters)

    def make_myopic_fixed(self, **overrides) -> MyopicFixedPolicy:
        """The MF baseline configured per this experiment."""
        parameters = dict(
            total_budget=self.total_budget,
            horizon=self.horizon,
            gamma=self.gamma,
            gibbs_iterations=self.gibbs_iterations,
            exhaustive_limit=self.exhaustive_limit,
            use_kernel=self.use_kernel,
            dual_tolerance=self.dual_tolerance,
            kernel_cache=self.kernel_cache,
            solve_deadline=self.solve_deadline,
        )
        parameters.update(overrides)
        return MyopicFixedPolicy(**parameters)

    def make_myopic_adaptive(self, **overrides) -> MyopicAdaptivePolicy:
        """The MA baseline configured per this experiment."""
        parameters = dict(
            total_budget=self.total_budget,
            horizon=self.horizon,
            gamma=self.gamma,
            gibbs_iterations=self.gibbs_iterations,
            exhaustive_limit=self.exhaustive_limit,
            use_kernel=self.use_kernel,
            dual_tolerance=self.dual_tolerance,
            kernel_cache=self.kernel_cache,
            solve_deadline=self.solve_deadline,
        )
        parameters.update(overrides)
        return MyopicAdaptivePolicy(**parameters)

    def make_unconstrained(self, **overrides) -> UnconstrainedPolicy:
        """The budget-oblivious reference policy."""
        parameters = dict(
            total_budget=self.total_budget,
            horizon=self.horizon,
            gamma=self.gamma,
            gibbs_iterations=self.gibbs_iterations,
            exhaustive_limit=self.exhaustive_limit,
            use_kernel=self.use_kernel,
            dual_tolerance=self.dual_tolerance,
            kernel_cache=self.kernel_cache,
            solve_deadline=self.solve_deadline,
        )
        parameters.update(overrides)
        return UnconstrainedPolicy(**parameters)

    def make_shortest_uniform(self, **overrides) -> ShortestRouteUniformPolicy:
        """The naive shortest-route / uniform-spread heuristic."""
        parameters = dict(total_budget=self.total_budget, horizon=self.horizon)
        parameters.update(overrides)
        return ShortestRouteUniformPolicy(**parameters)

    def default_policies(self) -> List[RoutingPolicy]:
        """The three policies compared throughout the paper: OSCAR, MA, MF."""
        return [self.make_oscar(), self.make_myopic_adaptive(), self.make_myopic_fixed()]

    def describe(self) -> Dict[str, object]:
        """A flat description of the configuration (for reports and logs)."""
        return dataclasses.asdict(self)
