"""Tests for repro.core.objective."""

import math

import pytest

from repro.core.objective import (
    drift_plus_penalty_objective,
    pair_success_probability,
    proportional_fairness_utility,
    route_log_success,
    route_success_probability,
    slot_cost,
    slot_utility,
)
from repro.network.graph import edge_key
from repro.network.routes import Route


@pytest.fixture
def route_0_to_2():
    return Route.from_nodes([0, 1, 2])


class TestRouteSuccessProbability:
    def test_product_of_edge_probabilities(self, line_graph, route_0_to_2):
        p = line_graph.slot_success(edge_key(0, 1))
        allocation = {edge_key(0, 1): 2, edge_key(1, 2): 3}
        expected = (1 - (1 - p) ** 2) * (1 - (1 - p) ** 3)
        assert route_success_probability(line_graph, route_0_to_2, allocation) == pytest.approx(expected)

    def test_missing_edge_allocation_gives_zero(self, line_graph, route_0_to_2):
        allocation = {edge_key(0, 1): 2}
        assert route_success_probability(line_graph, route_0_to_2, allocation) == 0.0

    def test_log_matches_probability(self, line_graph, route_0_to_2):
        allocation = {edge_key(0, 1): 2, edge_key(1, 2): 3}
        probability = route_success_probability(line_graph, route_0_to_2, allocation)
        assert route_log_success(line_graph, route_0_to_2, allocation) == pytest.approx(
            math.log(probability)
        )

    def test_log_minus_inf_when_unreachable(self, line_graph, route_0_to_2):
        assert route_log_success(line_graph, route_0_to_2, {}) == float("-inf")

    def test_more_channels_help(self, line_graph, route_0_to_2):
        small = route_success_probability(
            line_graph, route_0_to_2, {edge_key(0, 1): 1, edge_key(1, 2): 1}
        )
        large = route_success_probability(
            line_graph, route_0_to_2, {edge_key(0, 1): 3, edge_key(1, 2): 3}
        )
        assert large > small

    def test_longer_route_lower_success(self, line_graph):
        short = Route.from_nodes([0, 1])
        long = Route.from_nodes([0, 1, 2, 3])
        uniform = {key: 2 for key in long.edges}
        assert route_success_probability(line_graph, long, uniform) < route_success_probability(
            line_graph, short, uniform
        )


class TestPairSuccessProbability:
    def test_unserved_pair_is_zero(self, line_graph):
        assert pair_success_probability(line_graph, None) == 0.0

    def test_served_pair_matches_route(self, line_graph, route_0_to_2):
        allocation = {edge_key(0, 1): 1, edge_key(1, 2): 1}
        assert pair_success_probability(line_graph, route_0_to_2, allocation) == pytest.approx(
            route_success_probability(line_graph, route_0_to_2, allocation)
        )


class TestSlotAggregates:
    def test_slot_utility_sums_logs(self, line_graph):
        routes = [Route.from_nodes([0, 1]), Route.from_nodes([2, 3])]
        allocations = [{edge_key(0, 1): 2}, {edge_key(2, 3): 1}]
        expected = sum(
            route_log_success(line_graph, route, allocation)
            for route, allocation in zip(routes, allocations)
        )
        assert slot_utility(line_graph, routes, allocations) == pytest.approx(expected)

    def test_slot_utility_length_mismatch(self, line_graph):
        with pytest.raises(ValueError):
            slot_utility(line_graph, [Route.from_nodes([0, 1])], [])

    def test_slot_cost(self):
        assert slot_cost([{edge_key(0, 1): 2}, {edge_key(1, 2): 3, edge_key(2, 3): 1}]) == 6.0


class TestDriftPlusPenalty:
    def test_formula(self):
        assert drift_plus_penalty_objective(-1.5, 10.0, 2500.0, 20.0) == pytest.approx(
            2500.0 * -1.5 - 20.0 * 10.0
        )

    def test_zero_queue_reduces_to_weighted_utility(self):
        assert drift_plus_penalty_objective(-2.0, 100.0, 5.0, 0.0) == pytest.approx(-10.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            drift_plus_penalty_objective(-1.0, 1.0, -1.0, 0.0)


class TestProportionalFairness:
    def test_sum_of_logs(self):
        assert proportional_fairness_utility([0.5, 0.25]) == pytest.approx(
            math.log(0.5) + math.log(0.25)
        )

    def test_zero_probability_is_minus_inf(self):
        assert proportional_fairness_utility([0.5, 0.0]) == float("-inf")

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            proportional_fairness_utility([1.2])

    def test_fairness_preference(self):
        """Proportional fairness prefers (0.5, 0.5) to (0.9, 0.1) despite equal sums."""
        assert proportional_fairness_utility([0.5, 0.5]) > proportional_fairness_utility([0.9, 0.1])
