"""Tracked benchmark of the serving layer: streaming sessions at fleet scale.

Two measurements:

* **throughput** — one open-system run (Poisson session arrivals, renewals,
  online admission) pushed to ≥10⁵ simulated requests, reported as
  requests/s of wall clock and normalised against a bare numpy
  Poisson-draw loop measured in the same process.  The headline number is
  the dimensionless ``relative_throughput`` (serving requests/s over raw
  draws/s), which is stable across machines.
* **shard identity** — the same run executed on one shard and on four
  shards with a 5-slot merge window, asserting the per-slot records are
  byte-identical (the sharded scheduler's standing determinism contract).

Writes the numbers to ``BENCH_serving.json`` (``--output``); with
``--check BASELINE.json`` it exits non-zero when the shard layouts diverge,
the full-mode run falls short of the 10⁵-request floor, or a relative
metric falls below 80 % of the committed baseline's (ratios, not absolute
times, so the check is stable across machines).

Usage::

    PYTHONPATH=src python benchmarks/serving_bench.py --output BENCH_serving.json
    PYTHONPATH=src python benchmarks/serving_bench.py --quick --check benchmarks/BENCH_serving_quick.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import result_to_dict
from repro.serving.scheduler import ServingSimulator, serving_requests_per_second
from repro.utils.rng import derive_seed
from repro.version import __version__

#: Regression threshold: fail when a relative metric drops below this
#: fraction of the committed baseline's value.
REGRESSION_FRACTION = 0.8

#: The full-mode run must sustain at least this many simulated requests.
REQUEST_FLOOR = 100_000


def serving_config(quick: bool, shards: int = 1, merge_every: int = 1) -> ExperimentConfig:
    """The benchmark's open-system configuration (fleet scale in full mode)."""
    return ExperimentConfig.small().with_overrides(
        horizon=60 if quick else 400,
        total_budget=1.0e9,
        serving_enabled=True,
        serving_arrival_rate=1.0 if quick else 2.0,
        serving_session_rate=2.5,
        serving_session_lifetime=20.0 if quick else 60.0,
        serving_renew_probability=0.2,
        serving_session_budget=12.0,
        serving_admission="always",
        serving_shards=shards,
        serving_merge_every=merge_every,
    )


def run_serving(config: ExperimentConfig, seed: int = 1):
    """One serving run; returns (seconds, result)."""
    graph = config.build_graph(seed=derive_seed(seed, "graph", 0))
    simulator = ServingSimulator(
        graph=graph,
        model=config.serving_model(),
        horizon=config.horizon,
        total_budget=config.total_budget,
    )
    started = time.perf_counter()
    result = simulator.run(seed=derive_seed(seed, "serving", 0))
    return time.perf_counter() - started, result


def run_draw_baseline(draws: int) -> float:
    """A bare numpy Poisson/uniform draw loop (the normaliser)."""
    rng = np.random.default_rng(7)
    started = time.perf_counter()
    for _ in range(draws // 100):
        counts = rng.poisson(2.5, size=100)
        rng.random(int(counts.sum()) or 1)
    return time.perf_counter() - started


def bench_throughput(quick: bool, repeats: int) -> dict:
    config = serving_config(quick)
    best_s = float("inf")
    result = None
    for _ in range(repeats):
        seconds, result = run_serving(config)
        best_s = min(best_s, seconds)
    stats = result.diagnostics["serving"]
    arrived = int(stats["requests_arrived"])
    draws = 200_000 if quick else 1_000_000
    draw_s = min(run_draw_baseline(draws) for _ in range(repeats))
    requests_per_s = arrived / best_s
    draws_per_s = draws / draw_s
    return {
        "horizon": config.horizon,
        "requests_arrived": arrived,
        "requests_served": int(stats["requests_served"]),
        "sessions_arrived": int(stats["sessions_arrived"]),
        "run_s": round(best_s, 4),
        "requests_per_s": round(requests_per_s, 1),
        "draws_per_s": round(draws_per_s, 1),
        "relative_throughput": round(requests_per_s / draws_per_s, 4),
        "simulated_requests_per_s": round(
            serving_requests_per_second(stats) or 0.0, 2
        ),
    }


def bench_shard_identity(quick: bool) -> dict:
    """Byte-identity of one shard vs four shards with a merge window."""
    single_s, single = run_serving(serving_config(quick, shards=1))
    sharded_s, sharded = run_serving(
        serving_config(quick, shards=4, merge_every=5)
    )
    identical = json.dumps(result_to_dict(single), sort_keys=True) == json.dumps(
        result_to_dict(sharded), sort_keys=True
    )
    return {
        "single_shard_s": round(single_s, 4),
        "four_shards_s": round(sharded_s, 4),
        "records_identical": identical,
    }


def run_benchmarks(quick: bool) -> dict:
    repeats = 2 if quick else 3
    return {
        "meta": {
            "version": __version__,
            "quick": quick,
            "python": sys.version.split()[0],
        },
        "throughput": bench_throughput(quick, repeats),
        "sharding": bench_shard_identity(quick),
    }


def check_against_baseline(results: dict, baseline: dict) -> list:
    """Regressions vs the committed baseline (see module docstring)."""
    failures = []
    baseline_quick = (baseline.get("meta") or {}).get("quick")
    if baseline_quick is not None and baseline_quick != results["meta"]["quick"]:
        return [
            "baseline was recorded with quick=%s but this run used quick=%s; "
            "compare like against like (benchmarks/BENCH_serving_quick.json "
            "is the quick-mode baseline)" % (baseline_quick, results["meta"]["quick"])
        ]
    if not results["sharding"]["records_identical"]:
        failures.append(
            "sharding: one-shard and four-shard runs diverged (determinism break)"
        )
    if not results["meta"]["quick"]:
        arrived = results["throughput"]["requests_arrived"]
        if arrived < REQUEST_FLOOR:
            failures.append(
                f"throughput: {arrived} simulated requests fell below the "
                f"{REQUEST_FLOOR} floor"
            )
    current = results["throughput"].get("relative_throughput")
    reference = (baseline.get("throughput") or {}).get("relative_throughput")
    if current is not None and reference is not None:
        if current < REGRESSION_FRACTION * reference:
            failures.append(
                f"throughput: relative_throughput {current:.4f} fell below "
                f"{REGRESSION_FRACTION:.0%} of baseline {reference:.4f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter horizon and lighter load for CI smoke runs")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the benchmark JSON to this file")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail on shard divergence, a sub-floor request "
                             "count, or >20%% relative regression vs this "
                             "baseline JSON")
    arguments = parser.parse_args(argv)

    results = run_benchmarks(quick=arguments.quick)
    print(json.dumps(results, indent=2))

    if arguments.output:
        Path(arguments.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"[written to {arguments.output}]", file=sys.stderr)

    if arguments.check:
        baseline = json.loads(Path(arguments.check).read_text())
        failures = check_against_baseline(results, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("[no regression against baseline]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
