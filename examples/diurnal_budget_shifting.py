"""Budget shifting under a diurnal DQC workload.

The core argument for user-centric (long-horizon) entanglement routing is
that real DQC demand is not flat: there are busy and quiet phases, and a
budget spent uniformly (the Myopic-Fixed baseline) is wasted in the quiet
phases and insufficient in the busy ones.  This example drives OSCAR, the
myopic baselines and the offline Lagrangian oracle with a periodic
("diurnal") request process and shows how much of its budget each policy
spends during the busy half of the cycle.

Run it with::

    python examples/diurnal_budget_shifting.py
"""

from __future__ import annotations

from repro.core.offline import OfflineOraclePolicy
from repro.core.per_slot import PerSlotSolver
from repro.experiments.plots import line_chart
from repro.experiments.reporting import format_table
from repro.network.topology import waxman_topology_with_degree
from repro.simulation.engine import simulate_policies
from repro.workload.requests import DiurnalRequestProcess
from repro.workload.traces import generate_trace


def main() -> None:
    horizon = 40
    period = 20
    total_budget = 1000.0

    graph = waxman_topology_with_degree(num_nodes=12, target_degree=4.0, seed=21)
    workload = DiurnalRequestProcess(period=period, min_rate=0.5, max_rate=4.5, max_pairs=6)
    trace = generate_trace(
        graph, horizon=horizon, request_process=workload, num_candidate_routes=3, seed=22
    )
    print(f"Network: {graph.describe()}")
    print(f"Workload: diurnal, period {period} slots, "
          f"{trace.total_requests()} EC requests over {horizon} slots")

    from repro.experiments.config import ExperimentConfig

    config = ExperimentConfig.small().with_overrides(horizon=horizon, total_budget=total_budget)
    policies = [
        config.make_oscar(),
        config.make_myopic_adaptive(),
        config.make_myopic_fixed(),
        OfflineOraclePolicy.for_trace(
            graph, trace, total_budget=total_budget,
            solver=PerSlotSolver(gibbs_iterations=20), seed=23,
        ),
    ]
    results = simulate_policies(graph, trace, policies, total_budget=total_budget, seed=24)

    # Which slots are "busy"?  Those whose expected rate is above the midpoint.
    midpoint = 0.5 * (workload.min_rate + workload.max_rate)
    busy_slots = [t for t in range(horizon) if workload.expected_rate(t) >= midpoint]

    rows = []
    for name, result in results.items():
        costs = result.per_slot_costs()
        busy_spend = sum(costs[t] for t in busy_slots)
        rows.append([
            name,
            round(result.average_success_rate(), 4),
            round(result.average_utility(), 4),
            round(result.total_cost, 1),
            round(busy_spend / result.total_cost, 3) if result.total_cost else 0.0,
            round(result.budget_violation, 1),
        ])
    print()
    print(format_table(
        ["policy", "avg EC success", "avg utility", "qubits spent",
         "fraction spent in busy phase", "budget violation"],
        rows,
        title=f"Diurnal workload, budget C={total_budget:g} over {horizon} slots",
    ))

    print()
    print(line_chart(
        {name: result.cumulative_costs() for name, result in results.items()},
        title="Cumulative qubit spending over time (note the flat quiet phases for OSCAR/Oracle)",
        height=10,
        width=60,
        y_format="{:.0f}",
    ))
    print()
    print("OSCAR and the oracle concentrate their spending in the busy phase of the")
    print("cycle (higher 'fraction spent in busy phase') which is where the extra")
    print("qubits actually convert into higher EC success rates; Myopic-Fixed burns")
    print("the same share every slot regardless of demand.")


if __name__ == "__main__":
    main()
