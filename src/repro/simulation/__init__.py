"""Simulators: a discrete-event engine, an attempt-level link layer, the
slot-based network simulator that drives every experiment in the paper, and
the physical-layer co-simulation subsystem (swap/purify/decohere delivery
chains with delivered-fidelity accounting)."""

from repro.simulation.clock import SlotClock
from repro.simulation.events import Event, EventQueue, EventDrivenSimulator
from repro.simulation.link_layer import LinkLayerSimulator, RouteRealization
from repro.simulation.physical import (
    PhysicalEngine,
    PhysicalModel,
    PhysicalSlotOutcome,
    PhysicalStats,
    ReferencePhysicalEngine,
    VectorizedPhysicalEngine,
    build_physical_engine,
    merge_physical_stats,
)
from repro.simulation.results import SlotRecord, SimulationResult
from repro.simulation.engine import SlottedSimulator, simulate_policies

__all__ = [
    "SlotClock",
    "Event",
    "EventQueue",
    "EventDrivenSimulator",
    "LinkLayerSimulator",
    "RouteRealization",
    "PhysicalEngine",
    "PhysicalModel",
    "PhysicalSlotOutcome",
    "PhysicalStats",
    "ReferencePhysicalEngine",
    "VectorizedPhysicalEngine",
    "build_physical_engine",
    "merge_physical_stats",
    "SlotRecord",
    "SimulationResult",
    "SlottedSimulator",
    "simulate_policies",
]
