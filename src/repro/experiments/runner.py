"""Multi-trial experiment runner.

The paper reports averages over 5 independent trials.  A trial consists of
sampling one topology and one workload trace, then running every policy on
that identical trace.  :func:`run_comparison` performs the trials and
returns a :class:`ComparisonResult` from which the figure modules extract
their series and tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import jain_fairness_index
from repro.analysis.stats import TrialAggregate, aggregate_scalar, aggregate_series
from repro.core.policy import RoutingPolicy
from repro.experiments.config import ExperimentConfig
from repro.simulation.engine import simulate_policies
from repro.simulation.results import SimulationResult
from repro.utils.rng import derive_seed

PolicyFactory = Callable[[ExperimentConfig], Sequence[RoutingPolicy]]


def default_policy_factory(config: ExperimentConfig) -> Sequence[RoutingPolicy]:
    """The paper's policy line-up: OSCAR, Myopic-Adaptive, Myopic-Fixed."""
    return config.default_policies()


@dataclass
class ComparisonResult:
    """Results of every policy over every trial of one experiment."""

    config: ExperimentConfig
    trials: List[Dict[str, SimulationResult]] = field(default_factory=list)

    @property
    def policy_names(self) -> List[str]:
        """Names of the compared policies (order of the first trial)."""
        if not self.trials:
            return []
        return list(self.trials[0].keys())

    def results_for(self, policy_name: str) -> List[SimulationResult]:
        """All trial results of one policy."""
        return [trial[policy_name] for trial in self.trials]

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate_metric(
        self, policy_name: str, metric: Callable[[SimulationResult], float]
    ) -> TrialAggregate:
        """Aggregate an arbitrary scalar metric of one policy across trials."""
        return aggregate_scalar([metric(result) for result in self.results_for(policy_name)])

    def summary(self) -> Dict[str, Dict[str, TrialAggregate]]:
        """Mean ± CI of the headline metrics for every policy."""
        metrics: Dict[str, Callable[[SimulationResult], float]] = {
            "average_utility": lambda r: r.average_utility(),
            "average_success_rate": lambda r: r.average_success_rate(),
            "realized_success_rate": lambda r: r.realized_success_rate(),
            "total_cost": lambda r: r.total_cost,
            "budget_utilisation": lambda r: r.budget_utilisation,
            "budget_violation": lambda r: r.budget_violation,
            "served_fraction": lambda r: r.served_fraction(),
            "fairness": lambda r: jain_fairness_index(
                r.all_success_probabilities(include_unserved=True)
            ),
        }
        return {
            name: {
                metric_name: self.aggregate_metric(name, metric)
                for metric_name, metric in metrics.items()
            }
            for name in self.policy_names
        }

    def mean_series(self, policy_name: str, kind: str) -> List[float]:
        """Across-trial mean of a per-slot series of one policy.

        ``kind`` is one of ``"running_utility"``, ``"running_success"``,
        ``"cumulative_cost"`` or ``"queue_length"``.
        """
        extractors = {
            "running_utility": lambda r: r.running_average_utility(),
            "running_success": lambda r: r.running_average_success_rate(),
            "cumulative_cost": lambda r: r.cumulative_costs(),
            "per_slot_cost": lambda r: [float(c) for c in r.per_slot_costs()],
        }
        if kind not in extractors:
            raise ValueError(f"unknown series kind {kind!r}")
        series = [extractors[kind](result) for result in self.results_for(policy_name)]
        means, _ = aggregate_series(series)
        return means

    def success_probability_pool(self, policy_name: str) -> List[float]:
        """All per-request success probabilities of a policy, pooled over trials."""
        pool: List[float] = []
        for result in self.results_for(policy_name):
            pool.extend(result.all_success_probabilities(include_unserved=True))
        return pool


def run_comparison(
    config: ExperimentConfig,
    policy_factory: Optional[PolicyFactory] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
) -> ComparisonResult:
    """Run the multi-trial comparison defined by ``config``.

    Every trial draws a fresh topology and workload trace; every policy runs
    on the identical trace within a trial.  ``policy_factory`` may replace
    the default OSCAR/MA/MF line-up (it is called once per trial so that
    policies start from clean state).
    """
    policy_factory = policy_factory or default_policy_factory
    trials = trials if trials is not None else config.trials
    seed = seed if seed is not None else config.base_seed

    comparison = ComparisonResult(config=config)
    for trial in range(trials):
        graph_seed = derive_seed(seed, "graph", trial)
        trace_seed = derive_seed(seed, "trace", trial)
        run_seed = derive_seed(seed, "run", trial)
        graph = config.build_graph(seed=graph_seed)
        trace = config.build_trace(graph, seed=trace_seed)
        policies = list(policy_factory(config))
        results = simulate_policies(
            graph,
            trace,
            policies,
            total_budget=config.total_budget,
            realize=config.realize,
            seed=run_seed,
        )
        comparison.trials.append(results)
    return comparison
