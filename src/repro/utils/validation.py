"""Small argument-validation helpers used across the library.

Keeping these in one place makes error messages uniform and keeps the
domain modules focused on their logic.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Tuple, Type, Union


def check_type(value: Any, expected: Union[Type, Tuple[Type, ...]], name: str) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {expected_names}, got {type(value).__name__}")


def check_positive(value: Real, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_non_negative(value: Real, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def check_probability(value: Real, name: str, *, allow_zero: bool = True, allow_one: bool = True) -> None:
    """Raise :class:`ValueError` unless ``value`` is a valid probability.

    ``allow_zero`` / ``allow_one`` tighten the admissible interval when an
    open interval is required (e.g. a per-attempt success probability of
    exactly zero would make a link permanently unusable).
    """
    low_ok = value > 0 or (allow_zero and value == 0)
    high_ok = value < 1 or (allow_one and value == 1)
    if not (low_ok and high_ok):
        raise ValueError(f"{name} must be a probability in the required range, got {value}")


def check_in_range(value: Real, low: Real, high: Real, name: str) -> None:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")


def check_integer(value: Any, name: str) -> None:
    """Raise :class:`TypeError` unless ``value`` is an integral number."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
