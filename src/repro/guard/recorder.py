"""Flight recorder: a bounded ring of slot snapshots and repro bundles.

The recorder shadows a running trial with a ``deque(maxlen=...)`` of the
most recent slot records.  When the trial dies — invariant breach,
unhandled exception, or supervisor-retry exhaustion — :func:`dump_bundle`
writes a content-addressed **repro bundle**: a single JSON file holding
everything needed to re-execute the failing trial deterministically
(scenario dictionary, trial index, seed-derivation labels, effective guard
level, forced-breach spec, the guard verdict, and the last-N slot records)
plus environment info for the human reading it.

The content key is a SHA-256 over the *deterministic* part of the bundle
only — environment info and the wall-clock timestamp are excluded — so a
successful ``repro replay`` that re-dumps the same failure produces the
identical key: the round-trip check is an equality on file names.

Writes go through the same atomic pattern as the PR 8 checkpoints
(temp file in the target directory + ``os.replace``), so a bundle is never
observed half-written.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import sys
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional

from repro.guard.invariants import (
    FORCE_BREACH_ENV_VAR,
    GUARD_ENV_VAR,
    InvariantViolation,
)

#: Environment override of the bundle output directory.
BUNDLE_DIR_ENV_VAR = "REPRO_BUNDLE_DIR"

#: Default bundle directory, relative to the working directory.
DEFAULT_BUNDLE_DIR = "repro-bundles"

#: Bundle format version, bumped on incompatible layout changes.
BUNDLE_VERSION = 1

#: Seed-derivation labels used by ``execute_trial`` — recorded so a bundle
#: is self-describing about how the trial's RNG streams were derived.
RNG_STREAM_LABELS = ("graph", "trace", "run", "faults", "serving", "multiuser")


def bundle_dir() -> str:
    """The directory bundles are written to (``REPRO_BUNDLE_DIR`` override)."""
    return os.environ.get(BUNDLE_DIR_ENV_VAR, "").strip() or DEFAULT_BUNDLE_DIR


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of a slot record to plain JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # JSON has no inf/nan literals; keep them readable and round-trippable.
        if value != value:
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        return value
    try:
        return _jsonable(dataclasses.asdict(value))
    except (TypeError, ValueError):
        return repr(value)


class FlightRecorder:
    """Ring buffer of the most recent per-slot records of one trial.

    Purely passive: :meth:`record` appends, old entries fall off the far
    end, and nothing is written unless :func:`dump_bundle` is called with
    this recorder after a failure.
    """

    __slots__ = ("capacity", "_ring", "slots_seen")

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError(f"recorder capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self.slots_seen = 0

    def record(self, lineup: str, record: Any) -> None:
        """Append one slot record (any dataclass/mapping) for ``lineup``."""
        self.slots_seen += 1
        self._ring.append({"lineup": str(lineup), "record": _jsonable(record)})

    def tail(self) -> List[Dict[str, Any]]:
        """The buffered records, oldest first."""
        return list(self._ring)


def _content_key(payload: Mapping[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_bundle(
    scenario: Mapping[str, Any],
    trial: int,
    guard_level: str,
    recorder: Optional[FlightRecorder] = None,
    error: Optional[BaseException] = None,
    telemetry: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """The bundle dictionary for a failed trial (not yet written).

    The ``content`` sub-dict is the deterministic replay payload the
    content key is computed over; ``environment`` is advisory context for
    the human and excluded from the key.  ``telemetry`` (the crashed
    trial's last-N span events, when a tracer was armed) is likewise
    advisory: span timings are wall-clock, so the section lives outside
    ``content`` and never perturbs the replay key.
    """
    if isinstance(error, InvariantViolation):
        verdict: Optional[Dict[str, Any]] = error.verdict()
        kind = "invariant-breach"
    elif error is not None:
        verdict = None
        kind = "exception"
    else:
        verdict = None
        kind = "manual"
    content: Dict[str, Any] = {
        "version": BUNDLE_VERSION,
        "kind": kind,
        "scenario": _jsonable(scenario),
        "trial": int(trial),
        "guard_level": guard_level,
        "forced_breach": os.environ.get(FORCE_BREACH_ENV_VAR, "").strip() or None,
        "rng_stream_labels": list(RNG_STREAM_LABELS),
        "verdict": verdict,
        "error": None
        if error is None
        else {"type": type(error).__name__, "message": str(error)},
        "records": recorder.tail() if recorder is not None else [],
        "slots_seen": recorder.slots_seen if recorder is not None else 0,
    }
    bundle: Dict[str, Any] = {
        "content": content,
        "key": _content_key(content),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            GUARD_ENV_VAR: os.environ.get(GUARD_ENV_VAR, "") or None,
        },
    }
    if telemetry:
        bundle["telemetry"] = {"spans": [_jsonable(span) for span in telemetry]}
    return bundle


def dump_bundle(
    scenario: Mapping[str, Any],
    trial: int,
    guard_level: str,
    recorder: Optional[FlightRecorder] = None,
    error: Optional[BaseException] = None,
    directory: Optional[str] = None,
    telemetry: Optional[List[Dict[str, Any]]] = None,
) -> str:
    """Write a repro bundle atomically; returns the bundle path.

    The file name is the content key, so re-dumping the same failure
    overwrites (atomically) rather than accumulating duplicates.
    """
    bundle = build_bundle(
        scenario, trial, guard_level, recorder=recorder, error=error,
        telemetry=telemetry,
    )
    target_dir = directory or bundle_dir()
    os.makedirs(target_dir, exist_ok=True)
    path = os.path.join(target_dir, f"{bundle['key']}.json")
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def load_bundle(path: str) -> Dict[str, Any]:
    """Read a bundle back, validating the content key and version."""
    with open(path, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    content = bundle.get("content")
    if not isinstance(content, dict):
        raise ValueError(f"{path} is not a repro bundle (no content block)")
    version = content.get("version")
    if version != BUNDLE_VERSION:
        raise ValueError(
            f"{path} has bundle version {version!r}; this build reads "
            f"version {BUNDLE_VERSION}"
        )
    expected = _content_key(content)
    recorded = bundle.get("key")
    if recorded != expected:
        raise ValueError(
            f"{path} failed its content check (recorded key {recorded!r}, "
            f"recomputed {expected!r}); the bundle is corrupt"
        )
    return bundle
