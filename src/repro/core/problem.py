"""Per-slot decision context and decisions.

In each slot the policy observes the current EC requests ``Φ_t``, the
available resources (``Q_t^v``, ``W_t^e``) and the pre-computed candidate
routes ``R(ϕ)``, and must output a route for every request plus an integer
channel allocation on every edge of each chosen route.  :class:`SlotContext`
carries the observation, :class:`SlotDecision` the output; both are plain
data so they can be logged, replayed and inspected by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.network.graph import EdgeKey, QDNGraph, ResourceSnapshot
from repro.network.routes import Route
from repro.workload.requests import SDPair

#: Key of one allocation entry: (which request, which edge of its route).
AllocationKey = Tuple[SDPair, EdgeKey]


@dataclass(frozen=True)
class SlotContext:
    """Everything a policy may observe when deciding for slot ``t``.

    ``candidate_routes`` maps every request in ``requests`` to its candidate
    route set ``R(ϕ)``; requests whose candidate set is empty (disconnected
    endpoints) can never be served in this slot.
    """

    t: int
    graph: QDNGraph
    snapshot: ResourceSnapshot
    requests: Tuple[SDPair, ...]
    candidate_routes: Mapping[SDPair, Tuple[Route, ...]]

    def __post_init__(self) -> None:
        missing = [r for r in self.requests if r not in self.candidate_routes]
        if missing:
            raise ValueError(f"requests missing candidate routes: {missing}")
        # Both selectors, the drop-retry loop and the solver's victim
        # ranking call routes_for/servable_requests repeatedly every slot;
        # the context is frozen, so the answers are computed once.  (Plain
        # attributes — not fields — so dataclass equality/repr ignore them.)
        object.__setattr__(
            self,
            "_routes_cache",
            {r: tuple(routes) for r, routes in self.candidate_routes.items()},
        )
        object.__setattr__(
            self,
            "_servable",
            tuple(r for r in self.requests if len(self.candidate_routes[r]) > 0),
        )

    @property
    def num_requests(self) -> int:
        """Number of EC requests in this slot."""
        return len(self.requests)

    def routes_for(self, request: SDPair) -> Tuple[Route, ...]:
        """Candidate routes for ``request`` (cached — the context is frozen)."""
        return self._routes_cache[request]

    def servable_requests(self) -> Tuple[SDPair, ...]:
        """Requests that have at least one candidate route (cached)."""
        return self._servable

    def restricted_to(self, requests: Iterable[SDPair]) -> "SlotContext":
        """A context containing only the given subset of requests."""
        keep = tuple(requests)
        keep_set = set(keep)
        for request in keep:
            if request not in set(self.requests):
                raise ValueError(f"request {request} is not part of this context")
        return SlotContext(
            t=self.t,
            graph=self.graph,
            snapshot=self.snapshot,
            requests=keep,
            candidate_routes={
                request: tuple(routes)
                for request, routes in self.candidate_routes.items()
                if request in keep_set
            },
        )


@dataclass(frozen=True)
class SlotDecision:
    """The joint route-selection and qubit-allocation decision for one slot.

    ``selection`` holds the chosen route for every *served* request;
    ``allocation`` the integer number of channels for every (request, edge)
    of the chosen routes; ``unserved`` the requests that could not be served
    (no candidate route, or the slot was resource-infeasible even at one
    channel per edge).
    """

    selection: Mapping[SDPair, Route]
    allocation: Mapping[AllocationKey, int]
    unserved: Tuple[SDPair, ...] = ()

    def __post_init__(self) -> None:
        for request, route in self.selection.items():
            for key in route.edges:
                if (request, key) not in self.allocation:
                    raise ValueError(
                        f"allocation missing for request {request} edge {key}"
                    )
        for (request, key), value in self.allocation.items():
            if request not in self.selection:
                raise ValueError(f"allocation for unselected request {request}")
            if key not in self.selection[request].edges:
                raise ValueError(
                    f"allocation for edge {key} not on the chosen route of {request}"
                )
            if value < 1:
                raise ValueError(
                    f"allocation must be at least one channel, got {value} for {key}"
                )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def served_requests(self) -> Tuple[SDPair, ...]:
        """Requests that received a route and an allocation in this slot."""
        return tuple(self.selection.keys())

    @property
    def num_served(self) -> int:
        """Number of served requests."""
        return len(self.selection)

    def route_for(self, request: SDPair) -> Optional[Route]:
        """The chosen route for ``request`` (``None`` if unserved)."""
        return self.selection.get(request)

    def channels_for(self, request: SDPair, key: EdgeKey) -> int:
        """Channels allocated to ``request`` on edge ``key`` (0 if none)."""
        return int(self.allocation.get((request, key), 0))

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def cost(self) -> int:
        """Total qubit/channel cost ``c_t = Σ_ϕ Σ_e n_e`` of this decision."""
        return int(sum(self.allocation.values()))

    def node_usage(self) -> Dict[object, int]:
        """Qubits consumed per node (both endpoints of every allocated edge)."""
        usage: Dict[object, int] = {}
        for (request, key), value in self.allocation.items():
            for endpoint in key:
                usage[endpoint] = usage.get(endpoint, 0) + int(value)
        return usage

    def edge_usage(self) -> Dict[EdgeKey, int]:
        """Channels consumed per physical edge (summed over requests)."""
        usage: Dict[EdgeKey, int] = {}
        for (request, key), value in self.allocation.items():
            usage[key] = usage.get(key, 0) + int(value)
        return usage

    def respects_snapshot(self, snapshot: ResourceSnapshot) -> bool:
        """Whether the decision satisfies the slot's capacity constraints."""
        for node, used in self.node_usage().items():
            if used > snapshot.available_qubits(node):
                return False
        for key, used in self.edge_usage().items():
            if used > snapshot.available_channels(key):
                return False
        return True

    def success_probability(self, graph: QDNGraph, request: SDPair) -> float:
        """EC success probability of ``request`` under this decision (0 if unserved)."""
        route = self.selection.get(request)
        if route is None:
            return 0.0
        probability = 1.0
        for key in route.edges:
            probability *= graph.link_success(key, self.channels_for(request, key))
        return probability

    def success_probabilities(self, graph: QDNGraph) -> Dict[SDPair, float]:
        """EC success probability for every served request."""
        return {
            request: self.success_probability(graph, request)
            for request in self.selection
        }

    def utility(self, graph: QDNGraph, unserved_floor: Optional[float] = None) -> float:
        """The slot utility ``u(r_t, N_t) = Σ_ϕ log P(r_t(ϕ), N_t)``.

        Served requests contribute ``log`` of their success probability.
        Unserved requests contribute ``log(unserved_floor)`` when a floor is
        given, and are skipped otherwise (the paper's formulation implicitly
        assumes every request is served).
        """
        total = 0.0
        for request in self.selection:
            probability = self.success_probability(graph, request)
            total += math.log(probability) if probability > 0 else float("-inf")
        if unserved_floor is not None and self.unserved:
            if unserved_floor <= 0:
                raise ValueError("unserved_floor must be positive")
            total += len(self.unserved) * math.log(unserved_floor)
        return total

    @classmethod
    def empty(cls, unserved: Iterable[SDPair] = ()) -> "SlotDecision":
        """A decision that serves nothing (used when a slot is infeasible)."""
        return cls(selection={}, allocation={}, unserved=tuple(unserved))
