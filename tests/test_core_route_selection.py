"""Tests for repro.core.route_selection (Algorithm 3)."""

import pytest

from repro.core.route_selection import ExhaustiveRouteSelector, GibbsRouteSelector
from repro.network.graph import ResourceSnapshot
from repro.core.problem import SlotContext

from conftest import make_context, make_diamond_graph


class TestExhaustiveRouteSelector:
    def test_single_request_selects_a_candidate(self, diamond_context):
        request = diamond_context.requests[0]
        result = ExhaustiveRouteSelector().select(diamond_context, [request])
        assert result.feasible
        assert result.selection[request] in diamond_context.routes_for(request)

    def test_two_requests_prefer_disjoint_routes(self):
        """With two 0→3 requests on the diamond, splitting across the two
        disjoint 2-hop routes beats stacking both on one route."""
        graph = make_diamond_graph(qubits=8, channels=4)
        context = make_context(graph, [(0, 3), (0, 3)], num_routes=2)
        result = ExhaustiveRouteSelector().select(context, list(context.requests))
        assert result.feasible
        routes = list(result.selection.values())
        assert routes[0].nodes != routes[1].nodes

    def test_empty_request_list(self, diamond_context):
        result = ExhaustiveRouteSelector().select(diamond_context, [])
        assert result.selection == {}
        assert result.objective == 0.0

    def test_combination_count(self, diamond_context):
        selector = ExhaustiveRouteSelector()
        request = diamond_context.requests[0]
        count = selector.combination_count(diamond_context, [request])
        assert count == len(diamond_context.routes_for(request))

    def test_budget_cap_respected(self, diamond_context):
        request = diamond_context.requests[0]
        result = ExhaustiveRouteSelector().select(
            diamond_context, [request], budget_cap=3.0
        )
        assert result.feasible
        assert result.outcome.cost <= 3

    def test_unroutable_request_skipped(self, line_graph):
        context = make_context(line_graph, [(0, 3)])
        request = context.requests[0]
        stripped = SlotContext(
            t=0,
            graph=line_graph,
            snapshot=line_graph.full_snapshot(),
            requests=(request,),
            candidate_routes={request: ()},
        )
        result = ExhaustiveRouteSelector().select(stripped, [request])
        assert result.selection == {}


class TestGibbsRouteSelector:
    def test_matches_exhaustive_on_small_instance(self):
        graph = make_diamond_graph(qubits=8, channels=4)
        context = make_context(graph, [(0, 3), (0, 3)], num_routes=2)
        requests = list(context.requests)
        exact = ExhaustiveRouteSelector().select(
            context, requests, utility_weight=100.0, cost_weight=1.0
        )
        sampled = GibbsRouteSelector(gamma=5.0, iterations=60).select(
            context, requests, utility_weight=100.0, cost_weight=1.0, seed=1
        )
        assert sampled.feasible
        assert sampled.objective >= exact.objective - 0.05 * abs(exact.objective)

    def test_deterministic_given_seed(self, diamond_context):
        request = diamond_context.requests[0]
        selector = GibbsRouteSelector(gamma=10.0, iterations=30)
        first = selector.select(diamond_context, [request], seed=42)
        second = selector.select(diamond_context, [request], seed=42)
        assert first.selection[request] == second.selection[request]
        assert first.objective == pytest.approx(second.objective)

    def test_caching_limits_evaluations(self, diamond_context):
        request = diamond_context.requests[0]
        selector = GibbsRouteSelector(gamma=10.0, iterations=50)
        result = selector.select(diamond_context, [request], seed=3)
        # Only |R(phi)| distinct combinations exist, so the cache keeps the
        # number of allocation solves far below the iteration count.
        assert result.evaluations <= len(diamond_context.routes_for(request))

    def test_parallel_updates_produce_valid_result(self, line_graph):
        context = make_context(line_graph, [(0, 1), (2, 3)])
        selector = GibbsRouteSelector(gamma=10.0, iterations=30, parallel_updates=True)
        result = selector.select(context, list(context.requests), seed=5)
        assert result.feasible
        assert set(result.selection.keys()) == set(context.requests)

    def test_empty_requests(self, diamond_context):
        result = GibbsRouteSelector().select(diamond_context, [], seed=1)
        assert result.selection == {}

    def test_infeasible_context_reports_infeasible(self, diamond_graph):
        context = make_context(diamond_graph, [(0, 3)])
        starved = SlotContext(
            t=0,
            graph=diamond_graph,
            snapshot=ResourceSnapshot(
                qubits={node: 0 for node in diamond_graph.nodes},
                channels={key: 0 for key in diamond_graph.edges},
            ),
            requests=context.requests,
            candidate_routes=context.candidate_routes,
        )
        result = GibbsRouteSelector(iterations=10).select(
            starved, list(starved.requests), seed=2
        )
        assert not result.feasible

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GibbsRouteSelector(gamma=0.0)
        with pytest.raises(ValueError):
            GibbsRouteSelector(iterations=0)
