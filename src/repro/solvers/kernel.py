"""The compiled slot kernel: incremental evaluation of route combinations.

The OSCAR loop nests three solvers: Gibbs route selection (Algorithm 3)
around qubit allocation (Algorithm 2) around a dual-decomposition
relaxation.  The legacy object path rebuilds an
:class:`~repro.solvers.allocation_problem.AllocationProblem` from dataclasses
and cold-solves a fixed number of subgradient iterations for *every* route
combination the selector visits — even though a Gibbs proposal changes a
single request's route and barely moves the optimal dual multipliers.

:class:`SlotKernel` compiles, once per slot, flat NumPy arrays for every
(request, candidate-route, edge) variable — single-channel success
probabilities ``p_e`` and their ``-log1p(-p_e)`` tables, node/edge/budget
constraint rows, capacities — and then evaluates each route combination
incrementally on top of them:

* **incremental combination evaluation** — per-combination problem assembly
  is pure array slicing of the precompiled per-route blocks (no dataclass
  construction, no re-validation, no bound re-derivation from scratch);
* **warm-started dual solves** — the subgradient ascent is seeded with the
  multipliers of the previously evaluated combination (they are indexed by
  *physical* node/edge, so they remain meaningful across combinations) and
  stops early once the duality gap falls below ``dual_tolerance`` instead of
  always burning the full iteration budget; the legacy iteration count is
  kept as a hard cap;
* **vectorised polish and rounding** — the repaired primal point is polished
  with the shared :func:`~repro.solvers.relaxed.cyclic_coordinate_polish`
  and rounded with the shared :func:`~repro.solvers.rounding.surplus_pass`,
  the same routines the legacy path uses, so both paths land on the same
  integer allocation.

The kernel exposes the same evaluator interface as the legacy
``_CombinationEvaluator`` (``selection_for`` / ``outcome_for`` /
``objective`` / ``evaluations``) so the route selectors can swap it in
transparently; the legacy object path remains available as the
cross-checking reference (``use_kernel=False`` / ``ExperimentConfig``'s
``use_kernel`` toggle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.network.channels import log_multi_channel_success
from repro.solvers.allocation_problem import ContinuousSolution, IntegerSolution
from repro.solvers.relaxed import (
    DualDecompositionSolver,
    _closed_form_best_response,
    cyclic_coordinate_polish,
)
from repro.solvers.rounding import surplus_pass
from repro.utils.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.allocation import AllocationOutcome
    from repro.core.problem import AllocationKey, SlotContext
    from repro.network.routes import Route
    from repro.workload.requests import SDPair

#: Default relative duality-gap tolerance of the warm-started early stop.
#: Calibrated empirically: polish + rounding absorb relative gaps up to
#: ~1e-3 without changing a single integer allocation (see the kernel test
#: suite), so 1e-4 keeps an order of magnitude of safety margin.
DEFAULT_DUAL_TOLERANCE = 1e-4

_OUTCOME_CLS = None


def _outcome_class():
    """Lazily resolve :class:`AllocationOutcome` (breaks the core↔solvers cycle)."""
    global _OUTCOME_CLS
    if _OUTCOME_CLS is None:
        from repro.core.allocation import AllocationOutcome

        _OUTCOME_CLS = AllocationOutcome
    return _OUTCOME_CLS


@dataclass(frozen=True)
class KernelOptions:
    """Solver knobs of the compiled slot kernel.

    ``dual_iterations`` is the hard cap on subgradient steps (the legacy
    solver's fixed budget); ``dual_tolerance`` is the relative duality-gap
    threshold of the early stop (``0`` disables early stopping, which makes
    the kernel replay the legacy iteration schedule exactly);
    ``warm_start`` seeds each solve with the multipliers of the previous
    combination; the remaining fields mirror
    :class:`~repro.solvers.relaxed.DualDecompositionSolver`.
    """

    dual_iterations: int = 150
    dual_tolerance: float = DEFAULT_DUAL_TOLERANCE
    warm_start: bool = True
    polish_rounds: int = 2
    primal_check_every: int = 25
    feasibility_tolerance: float = 1e-6
    initial_step: Optional[float] = None
    step_offset_cap: int = 600

    def __post_init__(self) -> None:
        if self.dual_iterations < 1:
            raise ValueError("dual_iterations must be at least 1")
        if self.dual_tolerance < 0:
            raise ValueError("dual_tolerance must be non-negative")
        if self.primal_check_every < 1:
            raise ValueError("primal_check_every must be at least 1")
        if self.polish_rounds < 0:
            raise ValueError("polish_rounds must be non-negative")


def kernel_options_for(
    solver: object,
    dual_tolerance: Optional[float] = None,
    warm_start: bool = True,
) -> Optional[KernelOptions]:
    """Derive :class:`KernelOptions` from a relaxed solver, if compatible.

    Only a plain :class:`DualDecompositionSolver` maps onto the kernel (a
    subclass may have overridden ``solve``); anything else — e.g. the SLSQP
    reference solver — returns ``None`` and callers fall back to the legacy
    object path.
    """
    if type(solver) is not DualDecompositionSolver:
        return None
    tolerance = (
        DEFAULT_DUAL_TOLERANCE if dual_tolerance is None else float(dual_tolerance)
    )
    return KernelOptions(
        dual_iterations=solver.iterations,
        dual_tolerance=tolerance,
        # ``dual_tolerance=0`` promises an exact replay of the legacy
        # iteration schedule, which a warm multiplier seed would break.
        warm_start=warm_start and tolerance > 0.0,
        polish_rounds=solver.polish_rounds,
        primal_check_every=solver.primal_check_every,
        feasibility_tolerance=solver.tolerance,
        initial_step=solver.initial_step,
    )


class _RouteBlock:
    """Compiled arrays of one (request, candidate route) pair."""

    __slots__ = ("keys", "p", "p_list", "row_triples", "hops")

    def __init__(
        self,
        keys: List[Tuple[object, Tuple[object, object]]],
        p: np.ndarray,
        row_triples: np.ndarray,
    ) -> None:
        self.keys = keys
        self.p = p
        self.p_list = [float(v) for v in p]
        self.row_triples = row_triples
        self.hops = len(keys)


class SlotKernel:
    """Compiled per-slot evaluator of route combinations (see module docstring).

    Built once per (slot context, request set, candidate routes, weights,
    budget cap); every distinct route combination is solved at most once and
    cached, and consecutive solves share warm-started dual multipliers.
    """

    def __init__(
        self,
        context: "SlotContext",
        requests: Sequence["SDPair"],
        candidate_routes: Sequence[Sequence["Route"]],
        utility_weight: float = 1.0,
        cost_weight: float = 0.0,
        budget_cap: Optional[float] = None,
        options: Optional[KernelOptions] = None,
    ) -> None:
        check_non_negative(utility_weight, "utility_weight")
        check_non_negative(cost_weight, "cost_weight")
        if budget_cap is not None:
            check_non_negative(budget_cap, "budget_cap")
        self._requests = list(requests)
        self._candidates = [list(routes) for routes in candidate_routes]
        self._utility_weight = float(utility_weight)
        self._cost_weight = float(cost_weight)
        self._budget_cap = None if budget_cap is None else float(budget_cap)
        self._options = options if options is not None else KernelOptions()

        graph = context.graph
        snapshot = context.snapshot

        # ----- global constraint-row registry (nodes, edges, budget) ----- #
        node_row: Dict[object, int] = {}
        edge_row: Dict[Tuple[object, object], int] = {}
        capacities: List[float] = []
        edge_success: Dict[Tuple[object, object], float] = {}

        def row_of_node(node: object) -> int:
            row = node_row.get(node)
            if row is None:
                row = len(capacities)
                node_row[node] = row
                capacities.append(float(snapshot.available_qubits(node)))
            return row

        def row_of_edge(key: Tuple[object, object]) -> int:
            row = edge_row.get(key)
            if row is None:
                row = len(capacities)
                edge_row[key] = row
                capacities.append(float(snapshot.available_channels(key)))
            return row

        self._blocks: List[List[_RouteBlock]] = []
        for request, routes in zip(self._requests, self._candidates):
            blocks: List[_RouteBlock] = []
            for route in routes:
                keys: List[Tuple[object, Tuple[object, object]]] = []
                successes: List[float] = []
                triples: List[Tuple[int, int, int]] = []
                for edge in route.edges:
                    key = edge
                    if key not in edge_success:
                        edge_success[key] = float(graph.slot_success(key))
                    keys.append((request, key))
                    successes.append(edge_success[key])
                    triples.append(
                        (row_of_node(key[0]), row_of_node(key[1]), row_of_edge(key))
                    )
                blocks.append(
                    _RouteBlock(
                        keys=keys,
                        p=np.asarray(successes, dtype=float),
                        row_triples=np.asarray(triples, dtype=np.intp).reshape(-1, 3),
                    )
                )
            self._blocks.append(blocks)

        self._budget_row: Optional[int] = None
        if self._budget_cap is not None:
            self._budget_row = len(capacities)
            capacities.append(self._budget_cap)
        self._capacities = np.asarray(capacities, dtype=float)
        self._num_rows = len(capacities)

        # ----- warm-start state shared across combinations --------------- #
        self._warm_mult = np.zeros(self._num_rows, dtype=float)
        self._warm_ready = False
        self._step_offset = 0

        self._cache: Dict[Tuple[int, ...], "AllocationOutcome"] = {}
        self.evaluations = 0
        self.stats: Dict[str, int] = {
            "solves": 0,
            "cache_hits": 0,
            "dual_iterations": 0,
            "early_stops": 0,
        }

    # ------------------------------------------------------------------ #
    # Evaluator interface (drop-in for the legacy _CombinationEvaluator)
    # ------------------------------------------------------------------ #
    def selection_for(self, assignment: Tuple[int, ...]) -> Dict["SDPair", "Route"]:
        """The route mapping corresponding to an index assignment."""
        return {
            request: self._candidates[i][choice]
            for i, (request, choice) in enumerate(zip(self._requests, assignment))
        }

    def outcome_for(self, assignment: Tuple[int, ...]) -> "AllocationOutcome":
        """Allocate qubits for the combination, with caching."""
        key = tuple(int(choice) for choice in assignment)
        outcome = self._cache.get(key)
        if outcome is None:
            outcome = self._solve(key)
            self._cache[key] = outcome
            self.evaluations += 1
        else:
            self.stats["cache_hits"] += 1
        return outcome

    def objective(self, assignment: Tuple[int, ...]) -> float:
        """P2 objective of the combination; ``-inf`` when infeasible."""
        outcome = self.outcome_for(assignment)
        if not outcome.feasible:
            return float("-inf")
        return outcome.objective

    # ------------------------------------------------------------------ #
    # Per-combination solve
    # ------------------------------------------------------------------ #
    def _solve(self, assignment: Tuple[int, ...]) -> "AllocationOutcome":
        self.stats["solves"] += 1
        outcome_cls = _outcome_class()
        blocks = [self._blocks[i][choice] for i, choice in enumerate(assignment)]
        n = sum(block.hops for block in blocks)
        if n == 0:
            return outcome_cls(allocation={}, objective=0.0, feasible=True, cost=0)

        keys: List[Tuple[object, Tuple[object, object]]] = []
        p_list: List[float] = []
        for block in blocks:
            keys.extend(block.keys)
            p_list.extend(block.p_list)
        p = np.concatenate([block.p for block in blocks])
        triples = np.vstack([block.row_triples for block in blocks])

        # Active constraints, ordered exactly as the legacy problem builder
        # orders them (nodes by first touch, then edges, then the budget) so
        # the repair pass visits them in the same sequence.
        seen_nodes: Dict[int, None] = {}
        seen_edges: Dict[int, None] = {}
        for u_row, v_row, e_row in triples.tolist():
            if u_row not in seen_nodes:
                seen_nodes[u_row] = None
            if v_row not in seen_nodes:
                seen_nodes[v_row] = None
            if e_row not in seen_edges:
                seen_edges[e_row] = None
        order: List[int] = list(seen_nodes) + list(seen_edges)
        if self._budget_row is not None:
            order.append(self._budget_row)
        order_array = np.asarray(order, dtype=np.intp)
        m = len(order)

        local = np.empty(self._num_rows, dtype=np.intp)
        local[order_array] = np.arange(m)
        rows_local = local[triples]
        if self._budget_row is not None:
            rows_local = np.hstack(
                [rows_local, np.full((n, 1), m - 1, dtype=np.intp)]
            )
        width = rows_local.shape[1]

        membership = np.zeros((m, n), dtype=float)
        membership[rows_local.ravel(), np.repeat(np.arange(n), width)] = 1.0
        membership_t = membership.T.copy()
        capacities = self._capacities[order_array]
        var_rows = [rows_local[i] for i in range(n)]

        lower = np.ones(n, dtype=float)
        lower_loads = membership.sum(axis=1)
        raw_upper = (capacities - lower_loads + 1.0)[rows_local].min(axis=1)
        infeasible_bounds = bool(np.any(raw_upper < 1.0))
        upper = np.maximum(raw_upper, 1.0)

        V = self._utility_weight
        q = self._cost_weight
        options = self._options
        tolerance = options.feasibility_tolerance

        degenerate = (p <= 0.0) | (p >= 1.0)
        fast_path = not bool(np.any(degenerate))
        a = -np.log1p(-np.clip(p, 0.0, 1.0 - 1e-15))
        va = V * a
        neg_log1p = np.log1p(-p)

        def objective_np(x: np.ndarray) -> float:
            """Mirror of :meth:`AllocationProblem.objective_array`."""
            if fast_path:
                log_terms = np.log(-np.expm1(x * neg_log1p))
                return float(V * log_terms.sum() - q * x.sum())
            log_terms = np.empty_like(x)
            safe = p < 1.0
            log_terms[safe] = np.log(-np.expm1(x[safe] * neg_log1p[safe]))
            log_terms[~safe] = 0.0
            return float(V * log_terms.sum() - q * x.sum())

        def row_loads(x: np.ndarray) -> np.ndarray:
            return membership @ x

        def is_feasible(x: np.ndarray, tol: float) -> bool:
            """Mirror of :meth:`AllocationProblem.is_feasible`."""
            if np.any(x < lower - tol):
                return False
            return not np.any(membership @ x > capacities + tol)

        def repair(x: np.ndarray) -> np.ndarray:
            """Mirror of :meth:`AllocationProblem.repair_feasibility`.

            Reductions only ever shrink ``x``, so the rows violated after the
            initial clip are a superset of the rows that need work — the
            common near-feasible iterate costs one matvec and no row loop.
            """
            np.clip(x, lower, upper, out=x)
            violated = np.nonzero(membership @ x - capacities > 1e-12)[0]
            for r in violated:
                members = np.nonzero(membership[r])[0]
                load = float(x[members].sum())
                excess = load - capacities[r]
                if excess <= 1e-12:
                    continue
                headroom = x[members] - lower[members]
                total_headroom = headroom.sum()
                if total_headroom <= 0:
                    continue
                reduction = np.minimum(headroom, headroom * (excess / total_headroom))
                shortfall = excess - reduction.sum()
                if shortfall > 1e-12:
                    order_h = np.argsort(-(headroom - reduction))
                    for index in order_h:
                        available = headroom[index] - reduction[index]
                        take = min(available, shortfall)
                        reduction[index] += take
                        shortfall -= take
                        if shortfall <= 1e-12:
                            break
                x[members] = x[members] - reduction
            return x

        def integer_objective(values: np.ndarray) -> float:
            """Mirror of :meth:`AllocationProblem.objective` on integers."""
            utility = 0.0
            for p_i, value in zip(p_list, values):
                utility += log_multi_channel_success(p_i, float(value))
            return V * utility - q * float(values.sum())

        def finish(
            relaxed: ContinuousSolution, rounded: IntegerSolution
        ) -> "AllocationOutcome":
            allocation = {
                key: int(value) for key, value in zip(keys, rounded.values)
            }
            return outcome_cls(
                allocation=allocation,
                objective=rounded.objective,
                feasible=rounded.feasible,
                cost=int(sum(rounded.values)) if rounded.feasible else 0,
                integer_solution=rounded,
                relaxed_solution=relaxed,
            )

        # ----- minimum-footprint infeasibility: reject the combination --- #
        if infeasible_bounds or np.any(lower_loads > capacities + 1e-6):
            relaxed = ContinuousSolution(
                values=tuple(1.0 for _ in range(n)),
                objective=objective_np(lower),
                feasible=False,
            )
            values = lower.astype(int)
            rounded = IntegerSolution(
                values=tuple(int(v) for v in values),
                objective=integer_objective(lower),
                feasible=False,
            )
            return finish(relaxed, rounded)

        # ----- warm-started projected-subgradient dual ascent ------------ #
        step_scale = options.initial_step
        if step_scale is None:
            step_scale = max(V, 1.0) / max(float(capacities.max()), 1.0)

        # Warm starts and replay mode are mutually exclusive: a warm seed (or
        # saving the last oscillating iterate as one) would break the
        # ``dual_tolerance=0`` promise of replaying the legacy schedule.
        warm_enabled = options.warm_start and options.dual_tolerance > 0.0
        warm = warm_enabled and self._warm_ready
        mult = self._warm_mult[order_array].copy() if warm else np.zeros(m, dtype=float)
        offset = self._step_offset if warm else 0

        base_prices = np.full(n, q)
        best_x: Optional[np.ndarray] = None
        best_objective = -math.inf
        best_dual = math.inf
        best_mult: Optional[np.ndarray] = None
        gap_tolerance = options.dual_tolerance
        max_iterations = options.dual_iterations
        check_every = options.primal_check_every
        used = max_iterations
        x = lower.copy()

        def polish(candidate: np.ndarray, rounds: Optional[int] = None) -> np.ndarray:
            rounds = options.polish_rounds if rounds is None else rounds
            if rounds > 0:
                cyclic_coordinate_polish(
                    candidate, lower, upper, p, V, q, row_loads(candidate),
                    capacities, var_rows, rounds,
                )
            return candidate

        def best_response(prices: np.ndarray) -> np.ndarray:
            if fast_path:
                x = np.log1p(va / np.maximum(prices, 1e-300)) / a
                x = np.where(prices <= 0.0, upper, x)
                np.clip(x, lower, upper, out=x)
                return x
            return _closed_form_best_response(prices, p, V, lower, upper)

        polished_final = False
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            if gap_tolerance > 0.0:
                # Adaptive mode: Polyak-sized steps aimed at the best polished
                # primal bound, with a duality-gap early stop.  The repaired
                # subgradient iterate alone is a weak primal bound — polishing
                # every candidate is what makes the gap certify within a
                # handful of iterations (and what sizes the steps well).
                polished_final = True
                step_cap = 5.0 * step_scale
                for k in range(max_iterations):
                    prices = base_prices + membership_t @ mult
                    x = best_response(prices)
                    violation = membership @ x - capacities
                    dual_value = objective_np(x) - float(mult @ violation)
                    improved = dual_value < best_dual
                    if improved:
                        best_dual = dual_value
                        best_mult = mult.copy()
                    if improved or k == 0:
                        # A tighter dual iterate is also the better primal
                        # candidate; repairing/polishing only then skips the
                        # oscillating iterates.  One polish round tightens
                        # the primal bound enough for the gap test; the
                        # winner gets the remaining rounds after the loop.
                        repaired = repair(x.copy())
                        if is_feasible(repaired, tolerance):
                            candidate = polish(
                                repaired, rounds=min(options.polish_rounds, 1)
                            )
                            objective = objective_np(candidate)
                            if objective > best_objective:
                                best_objective = objective
                                best_x = candidate
                    if (
                        best_x is not None
                        and best_dual - best_objective
                        <= gap_tolerance * max(1.0, abs(best_objective))
                    ):
                        used = k + 1
                        self.stats["early_stops"] += 1
                        break
                    # Polyak step towards the best primal bound; the reduced
                    # violation zeroes rows whose multiplier is pinned at 0.
                    effective = np.where((mult > 0.0) | (violation > 0.0), violation, 0.0)
                    norm2 = float(effective @ effective)
                    step = (dual_value - best_objective) / max(norm2, 1e-12)
                    if not (0.0 < step < step_cap):
                        step = (
                            step_cap
                            if step >= step_cap
                            else step_scale / math.sqrt(offset + k + 1.0)
                        )
                    mult = np.maximum(0.0, mult + step * violation)
            else:
                # Replay mode (``dual_tolerance=0``): the legacy solver's
                # fixed subgradient schedule, checkpoints and final polish,
                # reproduced exactly — the cross-check reference.
                for k in range(max_iterations):
                    prices = base_prices + membership_t @ mult
                    x = best_response(prices)
                    violation = membership @ x - capacities
                    step = step_scale / math.sqrt(offset + k + 1.0)
                    mult = np.maximum(0.0, mult + step * violation)
                    if (k + 1) % check_every == 0 or k == max_iterations - 1:
                        repaired = repair(x.copy())
                        if is_feasible(repaired, tolerance):
                            objective = objective_np(repaired)
                            if objective > best_objective:
                                best_objective = objective
                                best_x = repaired

        self.stats["dual_iterations"] += used
        if warm_enabled:
            # Seed the next combination with the multipliers of the best dual
            # bound seen (the last subgradient iterate oscillates; the best
            # iterate is the tight one).
            self._warm_mult[order_array] = mult if best_mult is None else best_mult
            self._warm_ready = True
            self._step_offset = min(offset + used, options.step_offset_cap)

        if best_x is None:
            best_x = repair(x.copy())
            polished_final = False
        if polished_final:
            # The winning candidate saw one polish round in the loop; give it
            # the remaining rounds to reach the legacy polish effort.
            best_x = polish(best_x, rounds=max(options.polish_rounds - 1, 0))
        else:
            best_x = polish(best_x)
        best_objective = objective_np(best_x)
        relaxed_feasible = is_feasible(best_x, tolerance)
        relaxed = ContinuousSolution(
            values=tuple(float(v) for v in best_x),
            objective=best_objective,
            feasible=relaxed_feasible,
            iterations=used,
        )

        # ----- down-round and hand out the surplus ----------------------- #
        floored = np.maximum(np.floor(best_x + 1e-9), 1.0)
        if not (relaxed_feasible and is_feasible(floored, 1e-6)):
            rounded = IntegerSolution(
                values=tuple(int(v) for v in floored),
                objective=integer_objective(floored),
                feasible=False,
            )
            return finish(relaxed, rounded)

        loads = row_loads(floored)
        slack_total = float(np.sum(np.maximum(capacities - loads, 0.0)))
        surplus_pass(
            floored, upper, p, V, q, loads, capacities, rows_local,
            int(slack_total) + n,
        )
        objective = integer_objective(floored)
        if not math.isfinite(objective):
            objective = float("-inf")
        rounded = IntegerSolution(
            values=tuple(int(v) for v in floored),
            objective=objective,
            feasible=True,
        )
        return finish(relaxed, rounded)
