"""Budget planning: how much QDN budget does a target success rate need?

The user-centric angle of the paper is that the QDN user pays for every
qubit/channel it occupies and operates under a long-term budget.  This
example answers the operational question a user (or a DQC service owner)
actually faces: *given my workload, how does the achievable EC success rate
scale with the budget I am willing to spend, and where does the trade-off
parameter V put me on the performance/violation curve?*

It sweeps the budget for OSCAR and the myopic baselines, prints the
success-rate-vs-budget table (the paper's Fig. 5 at example scale), and then
sweeps V at a fixed budget to show the performance/budget-violation
trade-off of Fig. 7, annotated with the Theorem-1 violation bound.

Run it with::

    python examples/budget_planning.py
"""

from __future__ import annotations

from repro.experiments import fig5_budget, fig7_control_v
from repro.experiments.config import ExperimentConfig


def main() -> None:
    config = ExperimentConfig(
        num_nodes=10,
        horizon=25,
        total_budget=625.0,  # C/T = 25, the paper's per-slot share
        trials=1,
        max_pairs=4,
        gibbs_iterations=20,
        num_candidate_routes=3,
    )

    print("=== Budget sweep (paper Fig. 5, example scale) ===")
    budgets = [0.5 * config.total_budget, config.total_budget, 1.5 * config.total_budget,
               2.0 * config.total_budget]
    budget_result = fig5_budget.run(config, budgets=budgets, seed=5)
    print(budget_result.format_tables())
    print()

    # Find the cheapest budget at which OSCAR reaches a target success rate.
    target = 0.9
    reached = [
        (budget, rate)
        for budget, rate in zip(budget_result.budgets, budget_result.success_rate["OSCAR"])
        if rate >= target
    ]
    if reached:
        budget, rate = reached[0]
        print(f"OSCAR first reaches a {target:.0%} average EC success rate at "
              f"budget C = {budget:g} (measured {rate:.3f}).")
    else:
        best = max(budget_result.success_rate["OSCAR"])
        print(f"No swept budget reaches {target:.0%}; the best OSCAR achieves is {best:.3f}.")
    print()

    print("=== Trade-off parameter sweep (paper Fig. 7, example scale) ===")
    v_result = fig7_control_v.run(config, v_values=(250.0, 2500.0, 25000.0), seed=6)
    print(v_result.format_tables())
    print()
    print("Reading the table: a larger V buys utility/success rate at the price of")
    print("using more qubits (potentially violating the budget); the last column is")
    print("the Theorem-1 upper bound on the per-slot violation for that V.")


if __name__ == "__main__":
    main()
