"""Simulators: a discrete-event engine, an attempt-level link layer and the
slot-based network simulator that drives every experiment in the paper."""

from repro.simulation.clock import SlotClock
from repro.simulation.events import Event, EventQueue, EventDrivenSimulator
from repro.simulation.link_layer import LinkLayerSimulator, RouteRealization
from repro.simulation.results import SlotRecord, SimulationResult
from repro.simulation.engine import SlottedSimulator, simulate_policies

__all__ = [
    "SlotClock",
    "Event",
    "EventQueue",
    "EventDrivenSimulator",
    "LinkLayerSimulator",
    "RouteRealization",
    "SlotRecord",
    "SimulationResult",
    "SlottedSimulator",
    "simulate_policies",
]
