"""Shared utilities: random-number management, validation helpers, logging."""

from repro.utils.rng import RandomState, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
    check_type,
)

__all__ = [
    "RandomState",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_type",
]
