"""Fault injection: reproducible outages and graceful degradation.

The paper's experiments assume a network that never breaks.  The fault
layer (:mod:`repro.faults`) drops that assumption without dropping
determinism: seeded MTBF/MTTR outage processes and scripted one-shot
failures are precompiled into a per-slot schedule drawn from its own
spawned seed stream, so the same seed gives the same outages on any
worker layout — and a fault-free run stays byte-identical to the
historical tables.  This script

1. runs a fault-injected scenario and reads the availability accounting,
2. contrasts degradation-**aware** routing (failed elements leave the
   candidate sets, policies reroute) with degradation-**blind** routing
   (requests on a failed route are lost at realization time),
3. caps the per-slot solve with a deadline and watches the solver walk
   the exhaustive → Gibbs → greedy ladder,
4. checkpoints a run, "interrupts" it, and resumes byte-identically, and
5. sweeps the outage rate through the ``faults.*`` study axis
   (``python -m repro figure fig11`` is the full version).

Run it with::

    python examples/fault_injection.py
"""

from __future__ import annotations

import json

from repro import api


def base_scenario(aware: bool = True) -> "api.Scenario":
    return (
        api.Scenario("fault-injection")
        .with_topology(num_nodes=8, target_degree=3.0)
        .with_workload(horizon=30)
        .with_policies("oscar")
        .with_trials(2)
        .with_seed(7)
        .with_faults(
            edge_mtbf=25.0,          # mean up-time per edge, in slots
            node_mtbf=80.0,          # mean up-time per node
            mttr=4.0,                # mean down-time once failed
            outages=[["node", "3", 10, 5]],  # scripted: node 3 dark at t=10
            aware=aware,
        )
    )


def payload(record: "api.RunRecord") -> str:
    body = record.to_dict()
    body.pop("meta", None)  # meta carries wall-clock timings
    return json.dumps(body, sort_keys=True)


def main() -> None:
    # 1. One fault-injected run, end to end.
    record = base_scenario().run()
    stats = record.fault_stats()
    print(record.format_summary(title="Fault-injected run (degradation-aware)"))
    print()
    print(f"availability: {api.fault_availability(stats):.3f} "
          f"({int(stats['down_element_slots'])} of {int(stats['element_slots'])} "
          f"element-slots down)")
    print(f"outages: {int(stats['node_failures'])} node, "
          f"{int(stats['edge_failures'])} edge; "
          f"{int(stats['repairs'])} repair(s)")
    print(f"impact: {int(stats['requests_unservable'])} unservable, "
          f"{int(stats['requests_interrupted'])} interrupted request(s)")

    # 2. Aware vs blind degradation under the *same* outage schedule.
    blind = base_scenario(aware=False).run()
    blind_stats = blind.fault_stats()
    assert blind_stats["down_element_slots"] == stats["down_element_slots"]
    print("\nSame schedule, opposite degradation modes:")
    for label, rec in (("aware", record), ("blind", blind)):
        s = rec.fault_stats()
        rate = rec.summary()["OSCAR"]["realized_success_rate"].mean
        print(f"  {label:5s} success rate {rate:.3f}  "
              f"unservable {int(s['requests_unservable']):3d}  "
              f"interrupted {int(s['requests_interrupted']):3d}")

    # 3. The degradation ladder: cap the per-slot solve budget and the
    # solver falls back exhaustive -> Gibbs -> greedy, deterministically.
    capped = base_scenario().with_solver(solve_deadline=12).run()
    kernel = capped.kernel_stats()
    print(f"\nsolve_deadline=12: {int(kernel.get('deadline_gibbs_fallbacks', 0))} "
          f"Gibbs fallback(s), {int(kernel.get('deadline_greedy_fallbacks', 0))} "
          f"greedy fallback(s)")

    # 4. Checkpoint/resume.  A real run wires InterruptGuard to SIGINT
    # (the CLI's --checkpoint flag does exactly this); here a stop flag
    # plays the role of Ctrl-C after the second trial.
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = api.RunCheckpoint(Path(tmp) / "run.ckpt.json")
        scenario = base_scenario().with_trials(4)
        clean = api.run_scenario(scenario)

        calls = {"n": 0}

        def interrupt_after_two() -> bool:
            calls["n"] += 1
            return calls["n"] > 2

        partial = api.run_scenario(
            scenario, checkpoint=checkpoint, stop_flag=interrupt_after_two
        )
        resumed = api.run_scenario(scenario, checkpoint=checkpoint)
        assert payload(resumed) == payload(clean)
        print(f"\ncheckpoint/resume: stopped after "
              f"{partial.meta['completed_trials']} trial(s), resumed "
              f"{resumed.meta['resumed_trials']}, final tables byte-identical")

    # 5. The faults axis group composes with the study machinery.
    result = (
        api.Study("outage-sweep")
        .base(base_scenario().with_trials(1))
        .over("faults.edge_mtbf", [100.0, 25.0, 10.0], label="edge_mtbf")
        .run()
    )
    print()
    print(result.format_summary(metrics=("realized_success_rate",)))


if __name__ == "__main__":
    main()
