"""Benchmark: Figure 8 — impact of the initial virtual-queue length q0.

Paper findings reproduced: a larger q0 reduces early-slot spending (the
algorithm starts cautious) and total spending, while an excessively large q0
costs utility; a small positive q0 barely hurts utility.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig8_initial_queue


@pytest.mark.benchmark(group="fig8")
def test_fig8_initial_queue(benchmark, parameter_sweep_config):
    q0_values = (0.0, 25.0, 250.0)
    result = benchmark.pedantic(
        fig8_initial_queue.run,
        kwargs={"config": parameter_sweep_config, "q0_values": q0_values, "seed": 7},
        rounds=1,
        iterations=1,
    )

    # Early spending shrinks as q0 grows.
    assert result.early_cost[-1] <= result.early_cost[0] + 1e-9
    # Total spending also shrinks (weakly).
    assert result.total_cost[-1] <= result.total_cost[0] + 1e-9
    # A huge q0 cannot *improve* utility.
    assert result.average_utility[-1] <= result.average_utility[0] + 0.05

    print()
    print(result.format_tables())
