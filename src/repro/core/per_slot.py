"""The per-slot problem P2 and its solver.

P2 asks, for the current slot only: choose a route for every EC request and
an integer channel allocation on every edge of the chosen routes so that

    V · Σ_ϕ log P(r(ϕ), N(r(ϕ)))  −  q_t · Σ_ϕ Σ_e n_e

is maximised subject to the slot's node/edge capacity constraints (and,
for the myopic baselines, a per-slot budget cap).  The solver combines the
route selectors of :mod:`repro.core.route_selection` with the allocator of
:mod:`repro.core.allocation`, picking exhaustive search when the combination
space is small and Gibbs sampling otherwise, exactly as the paper suggests.

When even one channel per edge does not fit (a situation the paper's
Assumption 1 rules out but which can arise under heavy exogenous resource
occupancy), the solver degrades gracefully: requests are dropped, longest
candidate route first, until the remaining set becomes feasible.  Dropped
requests are reported as ``unserved`` so the metrics layer can account for
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.allocation import QubitAllocator
from repro.core.problem import SlotContext, SlotDecision
from repro.core.route_selection import (
    ExhaustiveRouteSelector,
    GibbsRouteSelector,
    RouteSelectionResult,
)
from repro.solvers.kernel import DEFAULT_DUAL_TOLERANCE
from repro.solvers.relaxed import RelaxedSolver
from repro.utils.rng import SeedLike, as_generator
from repro.workload.requests import SDPair


@dataclass(frozen=True)
class PerSlotSolution:
    """Outcome of solving P2 for one slot."""

    decision: SlotDecision
    objective: float
    evaluations: int
    used_exhaustive: bool
    dropped_requests: Tuple[SDPair, ...] = ()

    @property
    def cost(self) -> int:
        """Total qubit/channel cost of the decision."""
        return self.decision.cost()


@dataclass
class PerSlotSolver:
    """Solves the per-slot problem P2 (route selection + qubit allocation).

    ``selector_mode`` is one of ``"auto"`` (default: exhaustive when the
    number of route combinations is at most ``exhaustive_limit``, Gibbs
    otherwise), ``"exhaustive"`` or ``"gibbs"``.
    """

    selector_mode: str = "auto"
    exhaustive_limit: int = 64
    gamma: float = 500.0
    gibbs_iterations: int = 60
    parallel_updates: bool = False
    relaxed_solver: Optional[RelaxedSolver] = None
    use_kernel: bool = True
    dual_tolerance: float = DEFAULT_DUAL_TOLERANCE
    _allocator: QubitAllocator = field(init=False, repr=False)
    _exhaustive: ExhaustiveRouteSelector = field(init=False, repr=False)
    _gibbs: Optional[GibbsRouteSelector] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.selector_mode not in ("auto", "exhaustive", "gibbs"):
            raise ValueError(
                f"selector_mode must be 'auto', 'exhaustive' or 'gibbs', got {self.selector_mode!r}"
            )
        if self.exhaustive_limit < 1:
            raise ValueError("exhaustive_limit must be at least 1")
        if self.relaxed_solver is not None:
            self._allocator = QubitAllocator(solver=self.relaxed_solver)
        else:
            self._allocator = QubitAllocator()
        # Selectors are stateless across slots; building them once keeps the
        # drop-retry loop in :meth:`solve` from re-allocating them on every
        # iteration.  The Gibbs selector is built lazily so exhaustive-only
        # configurations keep working with Gibbs parameters (gamma,
        # iterations) its validation would reject.
        self._exhaustive = ExhaustiveRouteSelector(
            allocator=self._allocator,
            use_kernel=self.use_kernel,
            dual_tolerance=self.dual_tolerance,
        )
        self._gibbs = None

    @property
    def allocator(self) -> QubitAllocator:
        """The Algorithm-2 allocator used for every combination evaluation."""
        return self._allocator

    def _gibbs_selector(self) -> GibbsRouteSelector:
        if self._gibbs is None:
            self._gibbs = GibbsRouteSelector(
                allocator=self._allocator,
                gamma=self.gamma,
                iterations=self.gibbs_iterations,
                parallel_updates=self.parallel_updates,
                use_kernel=self.use_kernel,
                dual_tolerance=self.dual_tolerance,
            )
        return self._gibbs

    def _select(
        self,
        context: SlotContext,
        requests: Sequence[SDPair],
        utility_weight: float,
        cost_weight: float,
        budget_cap: Optional[float],
        seed: SeedLike,
    ) -> Tuple[RouteSelectionResult, bool]:
        """Run the configured route selector; returns (result, used_exhaustive)."""
        combinations = self._exhaustive.combination_count(context, requests)
        use_exhaustive = self.selector_mode == "exhaustive" or (
            self.selector_mode == "auto" and combinations <= self.exhaustive_limit
        )
        if use_exhaustive:
            result = self._exhaustive.select(
                context, requests, utility_weight, cost_weight, budget_cap, seed
            )
            return result, True
        result = self._gibbs_selector().select(
            context, requests, utility_weight, cost_weight, budget_cap, seed
        )
        return result, True if combinations <= 1 else False

    def solve(
        self,
        context: SlotContext,
        utility_weight: float = 1.0,
        cost_weight: float = 0.0,
        budget_cap: Optional[float] = None,
        seed: SeedLike = None,
    ) -> PerSlotSolution:
        """Solve P2 for ``context`` and return the slot decision.

        ``utility_weight`` is ``V`` (use 1 for the plain utility), and
        ``cost_weight`` the virtual-queue price ``q_t`` (use 0 when the cost
        is controlled by ``budget_cap`` instead, as the baselines do).
        """
        rng = as_generator(seed)
        servable = list(context.servable_requests())
        no_routes = tuple(r for r in context.requests if r not in set(servable))

        dropped: List[SDPair] = []
        evaluations = 0
        used_exhaustive = True
        while True:
            result, used_exhaustive = self._select(
                context, servable, utility_weight, cost_weight, budget_cap, rng
            )
            evaluations += result.evaluations
            if result.feasible or not servable:
                break
            # Infeasible even for the best combination: drop the request with
            # the longest shortest-candidate route (it consumes the most
            # resources at the minimum allocation) and retry.
            def min_hops(request: SDPair) -> int:
                routes = context.routes_for(request)
                return min(route.hops for route in routes)

            victim = max(servable, key=min_hops)
            servable.remove(victim)
            dropped.append(victim)

        unserved = tuple(no_routes) + tuple(dropped)
        if not result.selection:
            decision = SlotDecision.empty(unserved=unserved)
            return PerSlotSolution(
                decision=decision,
                objective=0.0,
                evaluations=evaluations,
                used_exhaustive=used_exhaustive,
                dropped_requests=tuple(dropped),
            )

        decision = SlotDecision(
            selection=dict(result.selection),
            allocation=dict(result.outcome.allocation),
            unserved=unserved,
        )
        return PerSlotSolution(
            decision=decision,
            objective=result.objective,
            evaluations=evaluations,
            used_exhaustive=used_exhaustive,
            dropped_requests=tuple(dropped),
        )
