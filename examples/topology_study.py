"""Topology study: how the QDN structure shapes entanglement routing.

Earlier entanglement-routing work (cited in the paper's related-work
section) studied specific topologies — grids, rings, stars — before the
community moved to general Waxman-style random graphs.  This example runs
OSCAR on all of them with the same workload intensity and budget-per-slot,
and reports success rate, route length and candidate-route diversity, which
explains *why* the general-topology problem needs both route selection and
qubit allocation.

Run it with::

    python examples/topology_study.py
"""

from __future__ import annotations

from repro.core.oscar import OscarPolicy
from repro.experiments.reporting import format_table
from repro.network.routes import route_diversity
from repro.network.topology import (
    grid_topology,
    ring_topology,
    star_topology,
    waxman_topology_with_degree,
)
from repro.simulation.engine import SlottedSimulator
from repro.workload.requests import UniformRequestProcess
from repro.workload.traces import generate_trace


def build_topologies(seed: int = 3):
    """The four topologies compared in this study."""
    return {
        "waxman(12, deg~4)": waxman_topology_with_degree(num_nodes=12, target_degree=4.0, seed=seed),
        "grid(3x4)": grid_topology(rows=3, cols=4, seed=seed),
        "ring(12)": ring_topology(num_nodes=12, seed=seed),
        "star(11 leaves)": star_topology(num_leaves=11, seed=seed),
    }


def main() -> None:
    horizon = 20
    per_slot_budget = 25.0
    total_budget = per_slot_budget * horizon

    rows = []
    for name, graph in build_topologies().items():
        trace = generate_trace(
            graph,
            horizon=horizon,
            request_process=UniformRequestProcess(min_pairs=1, max_pairs=3),
            num_candidate_routes=3,
            seed=7,
        )
        policy = OscarPolicy(
            total_budget=total_budget,
            horizon=horizon,
            trade_off_v=2500.0,
            gamma=500.0,
            gibbs_iterations=20,
        )
        simulator = SlottedSimulator(graph=graph, trace=trace, total_budget=total_budget)
        result = simulator.run(policy, seed=9)

        hops = [
            len(routes[0])
            for routes in trace.candidate_routes.values()
            if routes
        ]
        diversities = [
            route_diversity(routes) for routes in trace.candidate_routes.values() if routes
        ]
        rows.append([
            name,
            round(graph.average_degree(), 2),
            round(sum(hops) / len(hops), 2) if hops else 0.0,
            round(sum(diversities) / len(diversities), 2) if diversities else 0.0,
            round(result.average_success_rate(), 4),
            round(result.total_cost, 1),
            round(result.served_fraction(), 3),
        ])

    print(
        format_table(
            ["topology", "avg degree", "avg shortest route (hops)",
             "candidate-route diversity", "avg EC success", "qubits spent", "served"],
            rows,
            title=f"OSCAR across topologies (budget {total_budget:g}, {horizon} slots)",
        )
    )
    print()
    print("Denser, better-connected topologies give shorter routes and more")
    print("edge-disjoint candidates, which is exactly where joint route selection")
    print("and allocation (rather than a fixed shortest path) pays off.")


if __name__ == "__main__":
    main()
