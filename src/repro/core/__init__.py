"""The paper's primary contribution: user-centric entanglement routing.

* :mod:`repro.core.problem` — the per-slot decision context and the joint
  route-selection / qubit-allocation decision.
* :mod:`repro.core.objective` — entanglement success probabilities, the
  proportional-fair utility and the drift-plus-penalty objective.
* :mod:`repro.core.virtual_queue` — the Lyapunov virtual cost-deficit queue.
* :mod:`repro.core.allocation` — Algorithm 2: qubit allocation by continuous
  relaxation plus down-rounding with surplus allocation.
* :mod:`repro.core.route_selection` — Algorithm 3: route selection by Gibbs
  sampling, plus exhaustive search for small instances.
* :mod:`repro.core.per_slot` — the per-slot problem P2 solver combining the
  two, with graceful degradation when a slot is infeasible.
* :mod:`repro.core.policy` — the policy interface shared by OSCAR, the
  baselines, and any user-defined strategy.
* :mod:`repro.core.oscar` — Algorithm 1: the OSCAR online policy.
* :mod:`repro.core.baselines` — the paper's Myopic-Fixed and Myopic-Adaptive
  baselines plus additional reference policies.
* :mod:`repro.core.fidelity` — the fidelity-constrained extension sketched in
  Sec. III-C.
* :mod:`repro.core.offline` — the offline Lagrangian oracle (the empirical
  counterpart of Theorem 2's OPT).
* :mod:`repro.core.multiuser` — several tenants sharing one QDN, each running
  its own policy against the resources the others leave available.
"""

from repro.core.problem import SlotContext, SlotDecision
from repro.core.objective import (
    drift_plus_penalty_objective,
    pair_success_probability,
    route_success_probability,
    slot_utility,
)
from repro.core.virtual_queue import VirtualQueue
from repro.core.allocation import AllocationOutcome, QubitAllocator
from repro.core.route_selection import (
    ExhaustiveRouteSelector,
    GibbsRouteSelector,
    RouteSelectionResult,
)
from repro.core.per_slot import PerSlotSolver
from repro.core.policy import RoutingPolicy
from repro.core.oscar import OscarPolicy
from repro.core.baselines import (
    MyopicAdaptivePolicy,
    MyopicFixedPolicy,
    ShortestRouteUniformPolicy,
    UnconstrainedPolicy,
)
from repro.core.fidelity import FidelityAwarePolicy, RouteFidelityModel
from repro.core.offline import OfflineOraclePolicy, OfflinePlan, plan_offline
from repro.core.multiuser import MultiUserSimulator, MultiUserOutcome, QDNUser

__all__ = [
    "SlotContext",
    "SlotDecision",
    "drift_plus_penalty_objective",
    "pair_success_probability",
    "route_success_probability",
    "slot_utility",
    "VirtualQueue",
    "AllocationOutcome",
    "QubitAllocator",
    "ExhaustiveRouteSelector",
    "GibbsRouteSelector",
    "RouteSelectionResult",
    "PerSlotSolver",
    "RoutingPolicy",
    "OscarPolicy",
    "MyopicFixedPolicy",
    "MyopicAdaptivePolicy",
    "ShortestRouteUniformPolicy",
    "UnconstrainedPolicy",
    "FidelityAwarePolicy",
    "RouteFidelityModel",
    "OfflineOraclePolicy",
    "OfflinePlan",
    "plan_offline",
    "MultiUserSimulator",
    "MultiUserOutcome",
    "QDNUser",
]
