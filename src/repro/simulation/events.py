"""A minimal discrete-event simulation engine.

The slotted simulator covers everything the paper evaluates, but the physics
layer (attempt-level generation, swapping, decoherence) is naturally
event-driven; this engine lets the event-driven backend
(:mod:`repro.simulation.eventsim`), examples and tests compose those pieces
into protocol-level simulations without pulling in an external framework.
It is a standard priority-queue design: events carry a timestamp, a
deterministic tie-breaking sequence number and a callback, and support lazy
cancellation, repeating timers and incremental stepping via
:meth:`EventLoop.run_until`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.utils.validation import check_non_negative, check_positive

EventCallback = Callable[["EventLoop", "Event"], None]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled event: a timestamp, a tie-breaker and a callback.

    Ordering compares ``(time, sequence)`` only — ``name``, ``callback`` and
    ``payload`` are explicitly excluded (``compare=False``) so two events at
    the same time never fall through to comparing callbacks (which would
    raise for ``None`` or arbitrary callables); ties always break FIFO on
    the queue-assigned sequence number.

    ``cancelled``/``done`` are bookkeeping flags owned by :class:`EventQueue`
    (lazy deletion): a cancelled event stays in the heap but is skipped when
    it surfaces, and a popped event is marked done so a late ``cancel`` call
    cannot corrupt the queue's length accounting.
    """

    time: float
    sequence: int
    name: str = field(compare=False, default="event")
    callback: Optional[EventCallback] = field(compare=False, default=None)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    done: bool = field(compare=False, default=False)

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not processed)."""
        return not self.cancelled and not self.done

    def _mark_cancelled(self) -> None:
        object.__setattr__(self, "cancelled", True)

    def _mark_done(self) -> None:
        object.__setattr__(self, "done", True)


class EventQueue:
    """A time-ordered event queue with stable FIFO tie-breaking.

    Cancellation uses lazy deletion: :meth:`cancel` only flags the event, and
    cancelled entries are discarded when they reach the top of the heap, so
    cancelling is O(1) and ``len(queue)`` always counts live events.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._active = 0

    def __len__(self) -> int:
        return self._active

    def push(
        self,
        time: float,
        name: str = "event",
        callback: Optional[EventCallback] = None,
        payload: Any = None,
    ) -> Event:
        """Schedule an event at ``time`` and return it."""
        check_non_negative(time, "time")
        event = Event(
            time=float(time),
            sequence=next(self._counter),
            name=name,
            callback=callback,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        self._active += 1
        return event

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event; returns whether it was still pending."""
        if not event.active:
            return False
        event._mark_cancelled()
        self._active -= 1
        return True

    def pop(self) -> Event:
        """Remove and return the earliest live event (``IndexError`` if empty)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event._mark_done()
            self._active -= 1
            return event
        raise IndexError("pop from an empty event queue")

    def peek(self) -> Optional[Event]:
        """The earliest live event without removing it (``None`` if empty)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None


class Timer:
    """A repeating timer: fires ``callback`` every ``interval`` seconds.

    Created via :meth:`EventLoop.schedule_repeating`.  The timer re-arms
    itself *before* invoking the callback, so a callback may cancel its own
    timer to stop the repetition.
    """

    def __init__(
        self,
        loop: "EventLoop",
        interval: float,
        name: str,
        callback: Optional[EventCallback],
        first: float,
    ) -> None:
        check_positive(interval, "interval")
        self._loop = loop
        self.interval = float(interval)
        self.name = name
        self.callback = callback
        self.fires = 0
        self.cancelled = False
        self.event: Optional[Event] = loop.schedule_at(first, name=name, callback=self._fire)

    def cancel(self) -> bool:
        """Stop the timer; returns whether it was still armed."""
        if self.cancelled:
            return False
        self.cancelled = True
        if self.event is not None:
            self._loop.cancel(self.event)
            self.event = None
        return True

    def _fire(self, loop: "EventLoop", event: Event) -> None:
        self.fires += 1
        # Re-arm first so the callback can observe (and cancel) the next firing.
        self.event = loop.schedule(self.interval, name=self.name, callback=self._fire)
        if self.callback is not None:
            self.callback(loop, event)


class EventLoop:
    """Runs callbacks in event-time order.

    Callbacks receive the loop (so they can schedule follow-up events) and
    the event itself.  The simulation stops when the queue empties, when
    ``until`` is reached, or when ``max_events`` events have been processed.
    :meth:`run_until` additionally advances the clock to the target time even
    when future events remain pending, which is what slot-stepping callers
    (the :class:`~repro.simulation.eventsim.SlotBridge`) need.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events processed so far."""
        return self._processed

    def schedule(
        self,
        delay: float,
        name: str = "event",
        callback: Optional[EventCallback] = None,
        payload: Any = None,
    ) -> Event:
        """Schedule an event ``delay`` seconds after the current time."""
        check_non_negative(delay, "delay")
        return self.queue.push(self._now + delay, name=name, callback=callback, payload=payload)

    def schedule_at(
        self,
        time: float,
        name: str = "event",
        callback: Optional[EventCallback] = None,
        payload: Any = None,
    ) -> Event:
        """Schedule an event at absolute ``time`` (must not be in the past)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return self.queue.push(time, name=name, callback=callback, payload=payload)

    def schedule_repeating(
        self,
        interval: float,
        name: str = "timer",
        callback: Optional[EventCallback] = None,
        first: Optional[float] = None,
    ) -> Timer:
        """Create a repeating timer firing every ``interval`` seconds.

        The first firing defaults to ``now + interval``; pass ``first`` (an
        absolute time) to align the timer with an external schedule, e.g.
        slot boundaries.
        """
        start = self._now + interval if first is None else float(first)
        return Timer(self, interval, name=name, callback=callback, first=start)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event; returns whether it was still pending."""
        return self.queue.cancel(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events in order; returns the number of events processed.

        Events stamped exactly at ``until`` are processed; the clock only
        advances to ``until`` itself when the queue drains first (use
        :meth:`run_until` to advance unconditionally).
        """
        processed_before = self._processed
        while len(self.queue) > 0:
            if max_events is not None and self._processed - processed_before >= max_events:
                break
            next_event = self.queue.peek()
            assert next_event is not None
            if until is not None and next_event.time > until:
                break
            event = self.queue.pop()
            self._now = event.time
            self._processed += 1
            if event.callback is not None:
                event.callback(self, event)
        if until is not None and self._now < until and len(self.queue) == 0:
            self._now = until
        return self._processed - processed_before

    def run_until(self, time: float) -> int:
        """Process every event stamped ``<= time`` and advance the clock to it.

        Unlike ``run(until=...)``, the clock always ends at ``time`` (never
        before), even when later events remain pending — this is the stepping
        primitive used to walk the simulation slot by slot.
        """
        processed = self.run(until=time)
        if self._now < time:
            self._now = time
        return processed


# Backwards-compatible alias: the event loop predates the event-driven
# simulation backend, which now owns the ``EventDrivenSimulator`` name (see
# repro.simulation.eventsim).
EventDrivenSimulator = EventLoop
