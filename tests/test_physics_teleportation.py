"""Tests for repro.physics.teleportation."""

import math

import numpy as np
import pytest

from repro.physics.qubit import BellPair, BellState, Qubit
from repro.physics.teleportation import (
    teleport,
    teleportation_fidelity_with_noisy_pair,
)


def random_qubit(rng) -> Qubit:
    theta = float(rng.uniform(0, math.pi))
    phi = float(rng.uniform(0, 2 * math.pi))
    return Qubit.from_bloch(theta, phi)


class TestTeleport:
    def test_basis_states_arrive_intact(self, rng):
        pair = BellPair(node_a="alice", node_b="bob")
        for data in (Qubit.zero(), Qubit.one(), Qubit.plus()):
            outcome = teleport(data, pair, seed=rng)
            assert outcome.fidelity == pytest.approx(1.0)
            assert outcome.succeeded

    def test_random_states_arrive_intact(self, rng):
        pair = BellPair(node_a="alice", node_b="bob")
        for _ in range(20):
            data = random_qubit(rng)
            outcome = teleport(data, pair, seed=rng)
            assert outcome.fidelity == pytest.approx(1.0, abs=1e-9)

    def test_all_bell_states_work(self, rng):
        """The Pauli correction is specific to the shared Bell state."""
        data = random_qubit(rng)
        for bell_state in BellState:
            pair = BellPair(node_a="alice", node_b="bob", bell_state=bell_state)
            for _ in range(8):
                outcome = teleport(data, pair, seed=rng)
                assert outcome.fidelity == pytest.approx(1.0, abs=1e-9), bell_state

    def test_all_four_measurement_outcomes_occur(self):
        rng = np.random.default_rng(11)
        pair = BellPair(node_a="alice", node_b="bob")
        outcomes = {
            teleport(Qubit.plus(), pair, seed=rng).classical_bits for _ in range(200)
        }
        assert outcomes == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_classical_bits_are_bits(self, rng):
        pair = BellPair(node_a="alice", node_b="bob")
        outcome = teleport(Qubit.one(), pair, seed=rng)
        assert all(bit in (0, 1) for bit in outcome.classical_bits)

    def test_received_state_is_normalised(self, rng):
        pair = BellPair(node_a="alice", node_b="bob")
        outcome = teleport(random_qubit(rng), pair, seed=rng)
        vector = outcome.received.state_vector()
        assert np.linalg.norm(vector) == pytest.approx(1.0)


class TestNoisyTeleportationFidelity:
    def test_perfect_pair(self):
        assert teleportation_fidelity_with_noisy_pair(1.0) == pytest.approx(1.0)

    def test_mixed_pair_gives_classical_limit(self):
        # F_pair = 1/4 gives the classical teleportation fidelity of 1/2.
        assert teleportation_fidelity_with_noisy_pair(0.25) == pytest.approx(0.5)

    def test_monotone_in_pair_fidelity(self):
        values = [teleportation_fidelity_with_noisy_pair(f) for f in (0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            teleportation_fidelity_with_noisy_pair(1.2)


class TestRngThreading:
    def test_integer_seed_is_reproducible(self):
        pair = BellPair(node_a="alice", node_b="bob")
        data = Qubit.plus()
        first = teleport(data, pair, seed=123)
        second = teleport(data, pair, seed=123)
        assert first.classical_bits == second.classical_bits

    def test_spawned_streams_thread_through(self):
        # The same spawned stream drives the same measurement outcomes; an
        # independent sibling stream is allowed to differ (and does for at
        # least one of several trials).
        from repro.utils.rng import spawn_rngs

        pair = BellPair(node_a="alice", node_b="bob")
        data = Qubit.plus()
        left_a, _ = spawn_rngs(2024, 2)
        left_b, right = spawn_rngs(2024, 2)
        outcomes_a = [teleport(data, pair, seed=left_a).classical_bits for _ in range(8)]
        outcomes_b = [teleport(data, pair, seed=left_b).classical_bits for _ in range(8)]
        outcomes_r = [teleport(data, pair, seed=right).classical_bits for _ in range(8)]
        assert outcomes_a == outcomes_b
        assert outcomes_a != outcomes_r
