"""Multi-trial experiment runner.

The paper reports averages over 5 independent trials.  A trial consists of
sampling one topology and one workload trace, then running every policy on
that identical trace.  :func:`run_comparison` performs the trials and
returns a :class:`ComparisonResult` from which the figure modules extract
their series and tables.

.. deprecated::
    :func:`run_comparison` is now a thin shim over the :mod:`repro.api`
    facade (``repro.api.compare`` / ``Scenario`` / ``Session``), kept so
    existing imports and result handling continue to work.  New code should
    use the facade directly — it adds named policies, parallel trial
    execution and streaming events.  :class:`ComparisonResult` remains the
    canonical aggregation helper and is what
    :meth:`repro.api.records.RunRecord.to_comparison` returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import jain_fairness_index
from repro.analysis.stats import TrialAggregate, aggregate_scalar, aggregate_series
from repro.core.policy import RoutingPolicy
from repro.experiments.config import ExperimentConfig
from repro.simulation.results import SimulationResult

PolicyFactory = Callable[[ExperimentConfig], Sequence[RoutingPolicy]]

#: The headline metrics every summary reports, in table order.
SUMMARY_METRICS = (
    "average_utility",
    "average_success_rate",
    "realized_success_rate",
    "total_cost",
    "budget_utilisation",
    "budget_violation",
    "served_fraction",
    "fairness",
    "delivered_success_rate",
    "mean_delivered_fidelity",
    "fidelity_served_rate",
)

#: The subset of :data:`SUMMARY_METRICS` that only exists when a run
#: simulated the physical layer; absent (not zero) otherwise.
PHYSICAL_SUMMARY_METRICS = (
    "delivered_success_rate",
    "mean_delivered_fidelity",
    "fidelity_served_rate",
)


def default_policy_factory(config: ExperimentConfig) -> Sequence[RoutingPolicy]:
    """The paper's policy line-up: OSCAR, Myopic-Adaptive, Myopic-Fixed."""
    return config.default_policies()


@dataclass
class ComparisonResult:
    """Results of every policy over every trial of one experiment."""

    config: ExperimentConfig
    trials: List[Dict[str, SimulationResult]] = field(default_factory=list)

    @property
    def policy_names(self) -> List[str]:
        """Names of the compared policies (order of the first trial)."""
        if not self.trials:
            return []
        return list(self.trials[0].keys())

    def results_for(self, policy_name: str) -> List[SimulationResult]:
        """All trial results of one policy."""
        return [trial[policy_name] for trial in self.trials]

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate_metric(
        self, policy_name: str, metric: Callable[[SimulationResult], float]
    ) -> TrialAggregate:
        """Aggregate an arbitrary scalar metric of one policy across trials."""
        return aggregate_scalar([metric(result) for result in self.results_for(policy_name)])

    def summary(self) -> Dict[str, Dict[str, TrialAggregate]]:
        """Mean ± CI of the headline metrics for every policy.

        The metric names are :data:`SUMMARY_METRICS`; the
        :data:`PHYSICAL_SUMMARY_METRICS` subset is reported only for
        policies whose runs simulated the physical layer (absence means
        "not simulated", a different statement than a measured zero, and
        keeps legacy report text unchanged for physical-free runs).
        """
        metrics: Dict[str, Callable[[SimulationResult], float]] = {
            "average_utility": lambda r: r.average_utility(),
            "average_success_rate": lambda r: r.average_success_rate(),
            "realized_success_rate": lambda r: r.realized_success_rate(),
            "total_cost": lambda r: r.total_cost,
            "budget_utilisation": lambda r: r.budget_utilisation,
            "budget_violation": lambda r: r.budget_violation,
            "served_fraction": lambda r: r.served_fraction(),
            "fairness": lambda r: jain_fairness_index(
                r.all_success_probabilities(include_unserved=True)
            ),
        }
        physical_metrics: Dict[str, Callable[[SimulationResult], float]] = {
            "delivered_success_rate": lambda r: r.delivered_success_rate(),
            "mean_delivered_fidelity": lambda r: r.mean_delivered_fidelity(),
            "fidelity_served_rate": lambda r: r.fidelity_served_rate(),
        }
        assert set(metrics) | set(physical_metrics) == set(SUMMARY_METRICS)
        assert set(physical_metrics) == set(PHYSICAL_SUMMARY_METRICS)
        summaries: Dict[str, Dict[str, TrialAggregate]] = {}
        for name in self.policy_names:
            selected = dict(metrics)
            if any(result.has_physical_data for result in self.results_for(name)):
                selected.update(physical_metrics)
            summaries[name] = {
                metric_name: self.aggregate_metric(name, metric)
                for metric_name, metric in selected.items()
            }
        return summaries

    def mean_series(self, policy_name: str, kind: str) -> List[float]:
        """Across-trial mean of a per-slot series of one policy.

        ``kind`` is one of ``"running_utility"``, ``"running_success"``,
        ``"cumulative_cost"`` or ``"queue_length"``.
        """
        extractors = {
            "running_utility": lambda r: r.running_average_utility(),
            "running_success": lambda r: r.running_average_success_rate(),
            "cumulative_cost": lambda r: r.cumulative_costs(),
            "per_slot_cost": lambda r: [float(c) for c in r.per_slot_costs()],
        }
        if kind not in extractors:
            raise ValueError(f"unknown series kind {kind!r}")
        series = [extractors[kind](result) for result in self.results_for(policy_name)]
        means, _ = aggregate_series(series)
        return means

    def success_probability_pool(self, policy_name: str) -> List[float]:
        """All per-request success probabilities of a policy, pooled over trials."""
        pool: List[float] = []
        for result in self.results_for(policy_name):
            pool.extend(result.all_success_probabilities(include_unserved=True))
        return pool


def run_comparison(
    config: ExperimentConfig,
    policy_factory: Optional[PolicyFactory] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    workers: int = 1,
) -> ComparisonResult:
    """Run the multi-trial comparison defined by ``config``.

    Every trial draws a fresh topology and workload trace; every policy runs
    on the identical trace within a trial.  ``policy_factory`` may replace
    the default OSCAR/MA/MF line-up (it is called once per trial so that
    policies start from clean state).  ``workers > 1`` executes trials in a
    process pool with bit-identical results (the line-up must be picklable).

    This is a compatibility shim over :mod:`repro.api` — see the module
    docstring.
    """
    # Imported lazily: repro.api is a higher layer that itself consumes
    # ComparisonResult from this module.
    from repro.api import Scenario, Session

    overrides = {}
    if trials is not None:
        overrides["trials"] = int(trials)
    if seed is not None:
        overrides["base_seed"] = int(seed)
    run_config = config.with_overrides(**overrides) if overrides else config

    scenario = Scenario.from_config(run_config, name="comparison")
    if policy_factory is not None:
        scenario = scenario.with_lineup_factory(policy_factory)
    record = Session(workers=workers, stream_slots=False).run(scenario)
    # Preserve the caller's config object (including any trials/seed
    # overrides applied above) rather than a deserialised copy.
    return ComparisonResult(
        config=run_config, trials=[dict(trial) for trial in record.trials]
    )
