"""Random-number-generation helpers.

All stochastic components in the library accept an explicit
:class:`numpy.random.Generator` so that experiments are reproducible and so
that different policies can be evaluated on *identical* workload
realisations.  This module centralises construction and splitting of
generators.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

RandomState = np.random.Generator

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators from ``seed``.

    This is the preferred way to give each trial (or each subsystem within a
    trial) its own stream without correlated randomness.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Split an existing generator by drawing child seeds from it.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(base_seed: Optional[int], *components: Union[int, str]) -> int:
    """Deterministically derive a child seed from a base seed and labels.

    Useful when a reproducible seed must be associated with a named
    experiment component (e.g. ``derive_seed(7, "fig5", trial)``).
    """
    entropy: List[int] = [0 if base_seed is None else int(base_seed)]
    for component in components:
        if isinstance(component, str):
            entropy.append(abs(hash_string(component)) % (2**32))
        else:
            entropy.append(int(component) % (2**32))
    seq = np.random.SeedSequence(entropy)
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def hash_string(text: str) -> int:
    """A deterministic (process-independent) string hash.

    Python's built-in :func:`hash` is salted per process, which would break
    reproducibility across runs, so we use a simple FNV-1a hash instead.
    """
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) % (2**64)
    return value


def choice_index(rng: np.random.Generator, weights: Sequence[float]) -> int:
    """Draw an index proportionally to non-negative ``weights``."""
    array = np.asarray(list(weights), dtype=float)
    if array.size == 0:
        raise ValueError("cannot draw from an empty weight sequence")
    if np.any(array < 0):
        raise ValueError("weights must be non-negative")
    total = float(array.sum())
    if total <= 0:
        # All-zero weights: fall back to uniform.
        return int(rng.integers(0, array.size))
    return int(rng.choice(array.size, p=array / total))
