"""Self-verification walkthrough: guard levels, a forced breach, and replay.

The runtime invariant guard (``repro.guard``) re-checks the system's own
mathematics while it runs — constraint rows, virtual-queue conservation,
dual bounds, fidelity ranges, fault accounting — without perturbing a
single random draw.  This example shows the full loop:

1. run a guarded experiment and read the guard's check counters;
2. show that ``off``/``cheap``/``strict`` produce byte-identical results;
3. force a synthetic invariant breach, which dumps a content-addressed
   repro bundle;
4. replay the bundle and watch the exact same failure reproduce, keyed by
   an identical content hash;
5. run the lockstep differential pairs (slotted vs. event backend,
   reference vs. vectorized physical engine, kernel vs. legacy solver).

Run it with::

    python examples/guarded_run.py
"""

from __future__ import annotations

import os
import tempfile

from repro import api
from repro.experiments.config import ExperimentConfig
from repro.guard.invariants import FORCE_BREACH_ENV_VAR, InvariantViolation


def example_config() -> ExperimentConfig:
    return ExperimentConfig(
        num_nodes=10,
        horizon=20,
        total_budget=500.0,
        trials=1,
        max_pairs=4,
        gibbs_iterations=20,
        num_candidate_routes=3,
        physical_enabled=True,
    )


def main() -> None:
    config = example_config()

    print("=== 1. A guarded run and its check counters ===")
    scenario = api.Scenario.from_config(
        config.with_overrides(guard_level="strict"), name="guarded"
    ).with_policies("oscar")
    record = api.run_scenario(scenario)
    stats = record.guard_stats()
    print(f"guard level : strict")
    print(f"slots       : {stats['slots']}")
    print(f"checks      : {stats['checks']} "
          f"(core {stats['checks_core']}, kernel {stats['checks_kernel']}, "
          f"physical {stats['checks_physical']}, faults {stats['checks_faults']})")
    print(f"breaches    : {stats['breaches']}")

    print("\n=== 2. The guard is observational: results are byte-identical ===")
    baseline = None
    for level in ("off", "cheap", "strict"):
        run = api.run_scenario(
            api.Scenario.from_config(
                config.with_overrides(guard_level=level), name=level
            ).with_policies("oscar")
        )
        costs = run.to_dict()["trials"]
        baseline = costs if baseline is None else baseline
        print(f"guard={level:<6} identical to guard=off: {costs == baseline}")

    print("\n=== 3. Force a breach -> repro bundle ===")
    bundle_path = None
    with tempfile.TemporaryDirectory() as bundles:
        os.environ["REPRO_BUNDLE_DIR"] = bundles
        os.environ[FORCE_BREACH_ENV_VAR] = "7"
        try:
            api.execute_trial(scenario, 0)
        except InvariantViolation as breach:
            bundle_path = breach.bundle_path
            print(f"breach  : {breach}")
            print(f"bundle  : {os.path.basename(bundle_path)}")
        finally:
            del os.environ[FORCE_BREACH_ENV_VAR]

        print("\n=== 4. Replay the bundle: the same failure, the same key ===")
        result = api.replay_bundle(bundle_path)
        print(result.describe())
        del os.environ["REPRO_BUNDLE_DIR"]

    print("\n=== 5. Lockstep differential pairs ===")
    for report in api.diff_all_pairs(config=config.with_overrides(horizon=8)):
        print(report.describe())


if __name__ == "__main__":
    main()
