"""Cross-cutting property-based tests.

These hypothesis tests exercise invariants that span several layers of the
library — the kind of properties that individual unit tests (which pin
specific inputs) cannot cover exhaustively:

* the allocation pipeline (relax → round) always returns feasible integer
  allocations whose objective dominates the minimum allocation;
* the per-slot objective is consistent between the solver layer and the
  decision layer for arbitrary allocations;
* the virtual queue plus budget tracker never disagree about spending;
* Werner fidelity algebra and the channel formulas compose consistently.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import QubitAllocator
from repro.core.problem import SlotContext, SlotDecision
from repro.core.virtual_queue import VirtualQueue
from repro.network.channels import multi_channel_success, per_slot_success
from repro.network.graph import QDNGraph, QuantumEdge, QuantumNode, edge_key
from repro.network.routes import Route
from repro.physics.fidelity import fidelity_after_swap, fidelity_of_chain
from repro.solvers.allocation_problem import build_allocation_problem
from repro.solvers.relaxed import DualDecompositionSolver
from repro.solvers.rounding import round_down_with_surplus
from repro.workload.budget import BudgetTracker
from repro.workload.requests import SDPair


def build_chain_graph(num_nodes: int, qubits: int, channels: int, attempt_success: float) -> QDNGraph:
    graph = QDNGraph(attempts_per_slot=2000)
    for index in range(num_nodes):
        graph.add_node(QuantumNode(name=index, qubit_capacity=qubits))
    for index in range(num_nodes - 1):
        graph.add_edge(
            QuantumEdge(
                u=index, v=index + 1, channel_capacity=channels,
                attempt_success=attempt_success,
            )
        )
    return graph


class TestAllocationPipelineProperties:
    @given(
        num_nodes=st.integers(3, 5),
        qubits=st.integers(4, 12),
        channels=st.integers(2, 6),
        attempt_success=st.floats(1e-4, 2e-3),
        cost_weight=st.floats(0.0, 5.0),
        utility_weight=st.floats(1.0, 3000.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_end_to_end_allocation_is_feasible_and_beats_minimum(
        self, num_nodes, qubits, channels, attempt_success, cost_weight, utility_weight
    ):
        graph = build_chain_graph(num_nodes, qubits, channels, attempt_success)
        request = SDPair(source=0, destination=num_nodes - 1)
        route = Route.from_nodes(list(range(num_nodes)))
        context = SlotContext(
            t=0,
            graph=graph,
            snapshot=graph.full_snapshot(),
            requests=(request,),
            candidate_routes={request: (route,)},
        )
        outcome = QubitAllocator().allocate(
            context, {request: route},
            utility_weight=utility_weight, cost_weight=cost_weight,
        )
        assert outcome.feasible
        decision = SlotDecision(selection={request: route}, allocation=dict(outcome.allocation))
        assert decision.respects_snapshot(context.snapshot)

        # The chosen allocation's objective is at least the one-channel-per-edge
        # objective (that allocation is always feasible here).
        minimum = {key: 1 for key in route.edges}
        minimum_objective = (
            utility_weight
            * sum(math.log(graph.link_success(key, 1)) for key in route.edges)
            - cost_weight * len(route.edges)
        )
        achieved = (
            utility_weight
            * sum(
                math.log(graph.link_success(key, outcome.allocation[(request, key)]))
                for key in route.edges
            )
            - cost_weight * outcome.cost
        )
        assert achieved >= minimum_objective - 1e-6

    @given(
        successes=st.lists(st.floats(0.2, 0.9), min_size=2, max_size=6),
        capacity_slack=st.integers(0, 12),
        cost_weight=st.floats(0.0, 2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_relax_and_round_never_exceeds_capacity(self, successes, capacity_slack, cost_weight):
        capacity = float(len(successes) + capacity_slack)
        problem = build_allocation_problem(
            entries=[(f"v{i}", p) for i, p in enumerate(successes)],
            node_groups={"cap": (list(range(len(successes))), capacity)},
            utility_weight=10.0,
            cost_weight=cost_weight,
        )
        relaxed = DualDecompositionSolver().solve(problem)
        rounded = round_down_with_surplus(problem, relaxed)
        assert rounded.feasible
        assert sum(rounded.values) <= capacity + 1e-9
        assert all(value >= 1 for value in rounded.values)


class TestObjectiveConsistencyProperties:
    @given(
        allocations=st.lists(st.integers(1, 6), min_size=3, max_size=3),
        attempt_success=st.floats(1e-4, 2e-3),
    )
    @settings(max_examples=40, deadline=None)
    def test_decision_utility_matches_channel_formulas(self, allocations, attempt_success):
        graph = build_chain_graph(4, qubits=20, channels=10, attempt_success=attempt_success)
        request = SDPair(source=0, destination=3)
        route = Route.from_nodes([0, 1, 2, 3])
        allocation = {
            (request, key): value for key, value in zip(route.edges, allocations)
        }
        decision = SlotDecision(selection={request: route}, allocation=allocation)
        p = per_slot_success(attempt_success, 2000)
        expected = sum(
            math.log(multi_channel_success(p, value)) for value in allocations
        )
        assert decision.utility(graph) == pytest.approx(expected, rel=1e-9)
        assert decision.success_probability(graph, request) == pytest.approx(
            math.exp(expected), rel=1e-9
        )


class TestAccountingProperties:
    @given(costs=st.lists(st.integers(0, 60), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_queue_and_tracker_agree_on_overspending(self, costs):
        """q_T >= spent - C whenever q0 = 0 (the queue upper-bounds the deficit)."""
        horizon = len(costs)
        budget = 25.0 * horizon
        queue = VirtualQueue.for_budget(budget, horizon, initial_length=0.0)
        tracker = BudgetTracker(total_budget=budget, horizon=horizon)
        for cost in costs:
            queue.update(cost)
            tracker.record(cost)
        assert queue.length >= tracker.spent - budget - 1e-9
        assert tracker.violation() == pytest.approx(max(0.0, tracker.spent - budget))

    @given(
        costs=st.lists(st.integers(0, 40), min_size=2, max_size=40),
        q0=st.floats(0.0, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_larger_initial_queue_never_shrinks_final_queue(self, costs, q0):
        horizon = len(costs)
        budget = 20.0 * horizon
        small = VirtualQueue.for_budget(budget, horizon, initial_length=0.0)
        large = VirtualQueue.for_budget(budget, horizon, initial_length=q0)
        for cost in costs:
            small.update(cost)
            large.update(cost)
        assert large.length >= small.length - 1e-9


class TestPhysicsComposition:
    @given(fidelities=st.lists(st.floats(0.5, 1.0), min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_chain_fidelity_equals_pairwise_swapping(self, fidelities):
        sequential = fidelities[0]
        for fidelity in fidelities[1:]:
            sequential = fidelity_after_swap(sequential, fidelity)
        assert fidelity_of_chain(fidelities) == pytest.approx(sequential, rel=1e-9)

    @given(
        attempt_success=st.floats(1e-5, 1e-2),
        attempts=st.integers(100, 5000),
        channels=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_channel_composition_is_equivalent_to_pooled_attempts(
        self, attempt_success, attempts, channels
    ):
        """n channels of A attempts behave like one channel of n·A attempts."""
        per_channel = per_slot_success(attempt_success, attempts)
        combined = multi_channel_success(per_channel, channels)
        pooled = per_slot_success(attempt_success, attempts * channels)
        assert combined == pytest.approx(pooled, rel=1e-9)
