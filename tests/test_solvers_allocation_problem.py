"""Tests for repro.solvers.allocation_problem."""

import math

import numpy as np
import pytest

from repro.solvers.allocation_problem import (
    AllocationProblem,
    AllocationVariable,
    CapacityConstraint,
    build_allocation_problem,
)


def two_variable_problem(capacity: float = 6.0, utility_weight: float = 1.0, cost_weight: float = 0.0):
    """Two variables sharing one capacity constraint."""
    return build_allocation_problem(
        entries=[("a", 0.5), ("b", 0.5)],
        node_groups={"shared": ([0, 1], capacity)},
        utility_weight=utility_weight,
        cost_weight=cost_weight,
    )


class TestAllocationVariable:
    def test_success_formula(self):
        variable = AllocationVariable(key="x", slot_success=0.5)
        assert variable.success(2) == pytest.approx(0.75)
        assert variable.log_success(2) == pytest.approx(math.log(0.75))

    def test_zero_allocation_gives_minus_inf_log(self):
        variable = AllocationVariable(key="x", slot_success=0.5, lower=0.0)
        assert variable.log_success(0) == float("-inf")

    def test_marginal_gain_decreasing(self):
        variable = AllocationVariable(key="x", slot_success=0.4)
        gains = [variable.marginal_log_gain(float(n)) for n in range(1, 6)]
        assert all(b < a for a, b in zip(gains, gains[1:]))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AllocationVariable(key="x", slot_success=0.5, lower=3.0, upper=2.0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            AllocationVariable(key="x", slot_success=1.3)


class TestCapacityConstraint:
    def test_load_and_slack(self):
        constraint = CapacityConstraint(name="n", members=(0, 2), capacity=5.0)
        x = [2.0, 10.0, 1.5]
        assert constraint.load(x) == pytest.approx(3.5)
        assert constraint.slack(x) == pytest.approx(1.5)

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            CapacityConstraint(name="n", members=(0, 0), capacity=5.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CapacityConstraint(name="n", members=(0,), capacity=-1.0)


class TestAllocationProblem:
    def test_objective_combines_utility_and_cost(self):
        problem = two_variable_problem(utility_weight=2.0, cost_weight=0.5)
        x = [1.0, 2.0]
        expected = 2.0 * (math.log(0.5) + math.log(0.75)) - 0.5 * 3.0
        assert problem.objective(x) == pytest.approx(expected)
        assert problem.objective_array(np.array(x)) == pytest.approx(expected)

    def test_gradient_matches_finite_difference(self):
        problem = two_variable_problem(utility_weight=3.0, cost_weight=0.7)
        x = np.array([1.5, 2.5])
        gradient = problem.gradient(x)
        eps = 1e-6
        for i in range(2):
            bumped = x.copy()
            bumped[i] += eps
            numeric = (problem.objective_array(bumped) - problem.objective_array(x)) / eps
            assert gradient[i] == pytest.approx(numeric, rel=1e-3)

    def test_upper_bounds_tightened_from_constraints(self):
        problem = two_variable_problem(capacity=6.0)
        # Each variable can use at most capacity minus the other's lower bound.
        assert list(problem.upper_bounds()) == [5.0, 5.0]

    def test_feasibility_checks(self):
        problem = two_variable_problem(capacity=6.0)
        assert problem.is_feasible([1.0, 1.0])
        assert problem.is_feasible([3.0, 3.0])
        assert not problem.is_feasible([3.5, 3.0])
        assert not problem.is_feasible([0.5, 1.0])  # below the lower bound

    def test_lower_bound_feasibility(self):
        assert two_variable_problem(capacity=2.0).lower_bound_feasible()
        assert not two_variable_problem(capacity=1.0).lower_bound_feasible()

    def test_constraint_index_validation(self):
        with pytest.raises(ValueError):
            AllocationProblem(
                variables=[AllocationVariable(key="a", slot_success=0.5)],
                constraints=[CapacityConstraint(name="bad", members=(0, 1), capacity=3.0)],
            )

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            AllocationProblem(
                variables=[
                    AllocationVariable(key="a", slot_success=0.5),
                    AllocationVariable(key="a", slot_success=0.4),
                ],
                constraints=[],
            )

    def test_repair_feasibility_restores_constraints(self):
        problem = two_variable_problem(capacity=4.0)
        repaired = problem.repair_feasibility(np.array([4.0, 4.0]))
        assert problem.is_feasible(repaired)
        assert repaired.sum() <= 4.0 + 1e-9

    def test_repair_keeps_lower_bounds(self):
        problem = two_variable_problem(capacity=4.0)
        repaired = problem.repair_feasibility(np.array([10.0, 1.0]))
        assert all(value >= 1.0 - 1e-9 for value in repaired)

    def test_repair_noop_when_feasible(self):
        problem = two_variable_problem(capacity=6.0)
        x = np.array([2.0, 3.0])
        assert np.allclose(problem.repair_feasibility(x.copy()), x)

    def test_budget_cap_becomes_constraint(self):
        problem = build_allocation_problem(
            entries=[("a", 0.5), ("b", 0.5)],
            node_groups={},
            budget_cap=3.0,
        )
        assert len(problem.constraints) == 1
        assert problem.constraints[0].name == "budget"
        assert not problem.is_feasible([2.0, 2.0])
