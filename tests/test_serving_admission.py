"""Tests for repro.serving.admission: policies and the name registry."""

import pickle

import pytest

from repro.serving.admission import (
    AdmissionState,
    AlwaysAdmit,
    BacklogThreshold,
    TokenBucket,
    UnknownAdmissionPolicyError,
    available_admission_policies,
    canonical_admission_name,
    make_admission_policy,
    register_admission_policy,
)
from repro.serving.arrivals import SessionSpec


def spec(session_id=0):
    return SessionSpec(
        session_id=session_id,
        joined_slot=0,
        source=0,
        destination=1,
        request_rate=1.0,
        lifetime=5,
        renew_probability=0.0,
        seed=1,
    )


def state(backlog=0.0, t=0, pending=0, active=0):
    return AdmissionState(
        t=t, backlog=backlog, pending_requests=pending, active_sessions=active
    )


class TestPolicies:
    def test_always_admits(self):
        policy = AlwaysAdmit()
        assert policy.admit(spec(), state(backlog=1e9))

    def test_backlog_threshold_boundary(self):
        policy = BacklogThreshold(threshold=10.0)
        assert policy.admit(spec(), state(backlog=10.0))
        assert not policy.admit(spec(), state(backlog=10.0001))

    def test_backlog_threshold_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            BacklogThreshold(threshold=-1.0)

    def test_token_bucket_burst_then_starve(self):
        policy = TokenBucket(rate=0.0, burst=2.0)
        policy.reset()
        decisions = [policy.admit(spec(i), state()) for i in range(4)]
        assert decisions == [True, True, False, False]

    def test_token_bucket_refills_per_slot(self):
        policy = TokenBucket(rate=1.0, burst=1.0)
        policy.reset()
        assert policy.admit(spec(0), state())
        assert not policy.admit(spec(1), state())
        policy.on_slot(1)
        assert policy.admit(spec(2), state())

    def test_token_bucket_refill_capped_at_burst(self):
        policy = TokenBucket(rate=10.0, burst=2.0)
        policy.reset()
        for t in range(5):
            policy.on_slot(t)
        decisions = [policy.admit(spec(i), state()) for i in range(3)]
        assert decisions == [True, True, False]

    def test_token_bucket_reset_restores_burst(self):
        policy = TokenBucket(rate=0.0, burst=1.0)
        policy.reset()
        assert policy.admit(spec(0), state())
        policy.reset()
        assert policy.admit(spec(1), state())


class TestRegistry:
    def test_builtins_registered(self):
        names = available_admission_policies()
        assert names == (
            "always",
            "availability-gate",
            "backlog-threshold",
            "token-bucket",
        )

    def test_aliases_resolve(self):
        assert canonical_admission_name("always-admit") == "always"
        assert canonical_admission_name("open") == "always"
        assert canonical_admission_name("lyapunov") == "backlog-threshold"
        assert canonical_admission_name("Token_Bucket") == "token-bucket"

    def test_make_by_name_with_kwargs(self):
        policy = make_admission_policy("backlog", threshold=42.0)
        assert isinstance(policy, BacklogThreshold)
        assert policy.threshold == 42.0

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownAdmissionPolicyError) as excinfo:
            make_admission_policy("token-buckit")
        assert "token-bucket" in str(excinfo.value)

    def test_error_pickles(self):
        error = UnknownAdmissionPolicyError("nope", ["always"])
        clone = pickle.loads(pickle.dumps(error))
        assert clone.name == "nope"
        assert clone.known == ("always",)

    def test_register_decorator(self):
        @register_admission_policy("test-reject-all")
        class RejectAll(AlwaysAdmit):
            def admit(self, spec, state):
                return False

        try:
            policy = make_admission_policy("test-reject-all")
            assert not policy.admit(spec(), state())
        finally:
            _deregister("test-reject-all")


def _deregister(name):
    from repro.serving import admission

    admission._FACTORIES.pop(name, None)
