"""Tests for repro.faults: supervised pools, checkpoints, interrupt guard."""

import json
import os
import signal
import time

import pytest

from repro.faults.checkpoint import (
    CHECKPOINT_SCHEMA,
    InterruptGuard,
    RunCheckpoint,
    checkpoint_key,
)
from repro.faults.supervisor import PoolSupervisor, WorkerPoolError


# --------------------------------------------------------------------------- #
# Worker functions must live at module scope so the pool can pickle them.
# --------------------------------------------------------------------------- #
def _double(x):
    return x * 2


def _raise_value_error(x):
    raise ValueError(f"boom {x}")


def _die_unless_marker(marker, x):
    """Kill the worker process on the first attempt, succeed on the retry."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return x * 10


def _always_die(x):
    os._exit(1)


def _hang_unless_marker(marker, x):
    """Hang the worker on the first attempt, succeed on the retry."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(120)
    return x + 100


class TestPoolSupervisor:
    def test_run_returns_results_in_task_order(self):
        with PoolSupervisor(max_workers=2) as supervisor:
            results = supervisor.run(_double, [(i,) for i in range(6)])
        assert results == [0, 2, 4, 6, 8, 10]
        assert supervisor.recoveries == 0

    def test_task_exceptions_propagate(self):
        with PoolSupervisor(max_workers=1) as supervisor:
            with pytest.raises(ValueError, match="boom"):
                supervisor.run(_raise_value_error, [(1,)])

    def test_recovers_from_worker_death(self, tmp_path):
        marker = str(tmp_path / "died-once")
        with PoolSupervisor(max_workers=1, backoff_s=0.0) as supervisor:
            results = supervisor.run(_die_unless_marker, [(marker, 7)])
        assert results == [70]
        assert supervisor.recoveries >= 1

    def test_gives_up_after_max_retries(self):
        naps = []
        with PoolSupervisor(
            max_workers=1, max_retries=2, backoff_s=0.1, sleep=naps.append
        ) as supervisor:
            with pytest.raises(WorkerPoolError, match="giving up"):
                supervisor.run(_always_die, [(1,)])
        assert supervisor.recoveries == 2
        # Capped exponential backoff: 0.1 then 0.2 (cap far above).
        assert naps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_backoff_is_capped(self):
        naps = []
        with PoolSupervisor(
            max_workers=1,
            max_retries=4,
            backoff_s=1.0,
            backoff_cap_s=2.0,
            sleep=naps.append,
        ) as supervisor:
            with pytest.raises(WorkerPoolError):
                supervisor.run(_always_die, [(1,)])
        assert naps == [1.0, 2.0, 2.0, 2.0]

    def test_hung_worker_hits_progress_deadline(self, tmp_path):
        marker = str(tmp_path / "hung-once")
        with PoolSupervisor(
            max_workers=1, timeout_s=0.5, backoff_s=0.0
        ) as supervisor:
            results = supervisor.run(_hang_unless_marker, [(marker, 1)])
        assert results == [101]
        assert supervisor.recoveries >= 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PoolSupervisor(max_workers=0)
        with pytest.raises(ValueError):
            PoolSupervisor(max_workers=1, max_retries=-1)
        with pytest.raises(ValueError):
            PoolSupervisor(max_workers=1, timeout_s=0.0)


class TestCheckpointKey:
    def test_name_is_excluded(self):
        base = {"name": "a", "config": {"trials": 2}}
        renamed = {"name": "b", "config": {"trials": 2}}
        changed = {"name": "a", "config": {"trials": 3}}
        assert checkpoint_key(base) == checkpoint_key(renamed)
        assert checkpoint_key(base) != checkpoint_key(changed)


class TestRunCheckpoint:
    def test_load_missing_file_is_empty(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "absent.json")
        assert checkpoint.load("key") == []

    def test_wrong_key_is_a_miss(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(
            json.dumps({"schema": CHECKPOINT_SCHEMA, "key": "other", "trials": []})
        )
        assert RunCheckpoint(path).load("mine") == []

    def test_corrupt_file_warns_and_is_empty(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{truncated")
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
            assert RunCheckpoint(path).load("key") == []

    def test_maybe_save_respects_cadence(self, tmp_path, monkeypatch):
        checkpoint = RunCheckpoint(tmp_path / "ckpt.json", every=2)
        saves = []
        monkeypatch.setattr(
            checkpoint, "save", lambda key, completed: saves.append(len(completed))
        )
        assert not checkpoint.maybe_save("k", [1])
        assert checkpoint.maybe_save("k", [1, 2])

    def test_rejects_nonpositive_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            RunCheckpoint(tmp_path / "ckpt.json", every=0)

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{}")
        checkpoint = RunCheckpoint(path)
        checkpoint.clear()
        assert not path.exists()
        checkpoint.clear()  # idempotent


class TestInterruptGuard:
    def test_first_signal_sets_flag_only(self):
        with InterruptGuard(signals=(signal.SIGUSR1,)) as guard:
            assert not guard.stop_requested()
            signal.raise_signal(signal.SIGUSR1)
            assert guard.triggered
            assert guard.stop_requested()

    def test_second_signal_raises(self):
        with InterruptGuard(signals=(signal.SIGUSR1,)) as guard:
            signal.raise_signal(signal.SIGUSR1)
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGUSR1)
        assert guard.triggered

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGUSR1)
        with InterruptGuard(signals=(signal.SIGUSR1,)):
            assert signal.getsignal(signal.SIGUSR1) != before
        assert signal.getsignal(signal.SIGUSR1) == before

    def test_sigterm_is_cooperative(self):
        with InterruptGuard() as guard:
            signal.raise_signal(signal.SIGTERM)
            assert guard.stop_requested()
