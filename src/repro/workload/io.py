"""Serialisation of workload traces.

A frozen :class:`~repro.workload.traces.WorkloadTrace` is the unit of
comparability in this library: every policy that should be compared must see
the same trace.  Persisting traces to JSON makes experiments repeatable
across machines and sessions (and lets bug reports attach the exact workload
that triggered an issue).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

from repro.network.graph import ResourceSnapshot, edge_key
from repro.network.routes import Route
from repro.workload.requests import SDPair
from repro.workload.traces import SlotTrace, WorkloadTrace

PathLike = Union[str, Path]

FORMAT_NAME = "repro-workload-trace"
FORMAT_VERSION = 1


def _snapshot_to_dict(snapshot: ResourceSnapshot) -> Dict:
    return {
        "qubits": [[node, int(count)] for node, count in snapshot.qubits.items()],
        "channels": [[list(key), int(count)] for key, count in snapshot.channels.items()],
    }


def _snapshot_from_dict(payload: Mapping) -> ResourceSnapshot:
    qubits = {_node_from_json(node): int(count) for node, count in payload["qubits"]}
    channels = {
        edge_key(_node_from_json(pair[0]), _node_from_json(pair[1])): int(count)
        for pair, count in payload["channels"]
    }
    return ResourceSnapshot(qubits=qubits, channels=channels)


def _node_from_json(value):
    """JSON round-trips integer node names as ints and everything else as-is."""
    return value


def trace_to_dict(trace: WorkloadTrace) -> Dict:
    """A JSON-serialisable representation of a workload trace."""
    slots: List[Dict] = []
    for slot in trace.slots:
        slots.append(
            {
                "t": slot.t,
                "requests": [
                    {
                        "source": request.source,
                        "destination": request.destination,
                        "request_id": request.request_id,
                    }
                    for request in slot.requests
                ],
                "snapshot": _snapshot_to_dict(slot.snapshot),
            }
        )
    candidates = [
        {
            "endpoints": list(endpoints),
            "routes": [list(route.nodes) for route in routes],
        }
        for endpoints, routes in trace.candidate_routes.items()
    ]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "slots": slots,
        "candidate_routes": candidates,
    }


def trace_from_dict(payload: Mapping) -> WorkloadTrace:
    """Rebuild a workload trace from :func:`trace_to_dict` output."""
    if payload.get("format") != FORMAT_NAME:
        raise ValueError(f"not a serialised workload trace (format={payload.get('format')!r})")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {payload.get('version')!r}")

    slots = []
    for entry in payload["slots"]:
        requests = tuple(
            SDPair(
                source=_node_from_json(item["source"]),
                destination=_node_from_json(item["destination"]),
                request_id=int(item["request_id"]),
            )
            for item in entry["requests"]
        )
        slots.append(
            SlotTrace(
                t=int(entry["t"]),
                requests=requests,
                snapshot=_snapshot_from_dict(entry["snapshot"]),
            )
        )
    candidate_routes: Dict[Tuple, Tuple[Route, ...]] = {}
    for item in payload["candidate_routes"]:
        endpoints = tuple(_node_from_json(value) for value in item["endpoints"])
        routes = tuple(Route.from_nodes([_node_from_json(n) for n in nodes]) for nodes in item["routes"])
        candidate_routes[endpoints] = routes
    return WorkloadTrace(slots=tuple(slots), candidate_routes=candidate_routes)


def save_trace(trace: WorkloadTrace, path: PathLike) -> Path:
    """Write a workload trace to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_to_dict(trace), indent=2))
    return path


def load_trace(path: PathLike) -> WorkloadTrace:
    """Load a workload trace previously written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
