"""Scenario execution: serial or process-parallel trials, streamed events.

A :class:`Session` runs the trials of a :class:`~repro.api.scenario.Scenario`
and returns a :class:`~repro.api.records.RunRecord`.  Each trial is a pure
function of ``(scenario, trial_index)``: its topology, trace and simulation
streams are derived from the scenario's base seed with
:func:`repro.utils.rng.derive_seed`, exactly as the serial runner has always
done — so running with ``workers > 1`` in a process pool produces results
bit-identical to a serial run of the same scenario.

While trials execute, the session emits the event stream documented in
:mod:`repro.api.events` to its observers (progress reporting, live metrics,
early stop).  In parallel mode, per-slot events are replayed in trial order
once each trial's results arrive, so observer invocation order is
deterministic in both modes.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig

from repro.api.events import (
    EarlyStop,
    RunCompleted,
    RunEvent,
    RunObserver,
    RunStarted,
    SlotCompleted,
    TrialCompleted,
    TrialStarted,
)
from repro.api.records import RunRecord
from repro.api.scenario import Scenario, unsupported_backend_error
from repro.core.multiuser import MultiUserSimulator, ProviderSlotRecord
from repro.faults import PoolSupervisor, RunCheckpoint, WorkerPoolError, checkpoint_key
from repro.guard.invariants import InvariantViolation, effective_guard_level
from repro.guard.recorder import FlightRecorder, dump_bundle
from repro.serving.scheduler import SERVING_LINEUP_NAME
from repro.simulation.engine import simulate_policies
from repro.telemetry import hooks as telemetry_hooks
from repro.simulation.results import SimulationResult
from repro.utils.rng import derive_seed

#: One executed trial: line-up results plus provider records (multi-user only).
TrialOutcome = Tuple[Dict[str, SimulationResult], Tuple[ProviderSlotRecord, ...]]


def execute_trial(
    scenario: Scenario,
    trial: int,
    on_slot: Optional[Callable[[str, object], Optional[bool]]] = None,
) -> TrialOutcome:
    """Run one trial of ``scenario`` (the unit of parallelism).

    The seed derivation mirrors the historical serial runner slot for slot:
    ``derive_seed(base, "graph"|"trace"|"run", trial)`` for comparisons and
    ``derive_seed(base, "graph"|"multiuser", trial)`` for multi-user runs —
    results therefore do not depend on which process executes the trial.

    With the invariant guard armed (``guard_level`` or ``REPRO_GUARD`` not
    ``"off"``), a flight recorder shadows the trial and any invariant breach
    or unhandled exception dumps a content-addressed repro bundle before
    re-raising — ``repro replay <bundle>`` re-executes the trial
    deterministically (:mod:`repro.guard.replay`).  Guard off runs the
    historical path with zero extra work.
    """
    level = effective_guard_level(scenario.config.guard_level)
    if level == "off":
        return _execute_trial_inner(scenario, trial, on_slot)
    recorder = FlightRecorder()
    # Forget any previous trial's tracer in this worker process, so a crash
    # bundle only ever attaches the span ring of the trial that crashed.
    telemetry_hooks.reset()

    def recording_slot(name: str, record: object) -> Optional[bool]:
        recorder.record(name, record)
        return on_slot(name, record) if on_slot is not None else None

    try:
        return _execute_trial_inner(scenario, trial, recording_slot)
    except EarlyStop:
        # An observer-requested stop is a clean wind-down, not a failure.
        raise
    except BaseException as exc:
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        # The recorder is best-effort: a failure while snapshotting the
        # scenario or writing the bundle must never mask the real error.
        try:
            # The simulator's activation has already unwound by now; the
            # hooks keep the crashed trial's tracer reachable so its span
            # ring rides the bundle (outside the content key — span
            # timings are wall-clock and must not perturb replay identity).
            tracer = telemetry_hooks.last()
            spans = tracer.tail() if tracer is not None else None
            path = dump_bundle(
                scenario.to_dict(),
                trial,
                level,
                recorder=recorder,
                error=exc,
                telemetry=spans,
            )
        except Exception as dump_error:
            # Not a warning: under ``-W error`` a warning raised here would
            # mask the original exception all over again.
            print(
                f"[guard] could not dump a repro bundle for {exc!r}: "
                f"{dump_error!r}",
                file=sys.stderr,
            )
        else:
            if isinstance(exc, InvariantViolation):
                exc.bundle_path = path
                exc.details["bundle_path"] = path
        raise


def _execute_trial_inner(
    scenario: Scenario,
    trial: int,
    on_slot: Optional[Callable[[str, object], Optional[bool]]] = None,
) -> TrialOutcome:
    config = scenario.config
    seed = config.base_seed
    physical = config.physical_model()
    graph = config.build_graph(seed=derive_seed(seed, "graph", trial))
    # The fault schedule draws from its own spawned stream, so enabling it
    # perturbs no other stream; fault-free runs skip this branch entirely.
    faults = None
    if config.fault_enabled:
        faults = config.build_faults(graph, derive_seed(seed, "faults", trial))
    if scenario.is_serving:
        from repro.serving.scheduler import ServingSimulator
        from repro.simulation.clock import SlotClock

        if scenario.is_multiuser:
            raise ValueError(
                "unsupported combination: the serving layer and a multi-user "
                "tenant line-up are mutually exclusive; drop with_serving() "
                "or the tenant line-up"
            )
        if config.backend != "slotted":
            raise unsupported_backend_error(
                config.backend,
                "the serving layer (with_serving)",
                "use with_backend('slotted') or with_serving(False)",
            )
        simulator = ServingSimulator(
            graph=graph,
            model=config.serving_model(),
            horizon=config.horizon,
            total_budget=config.total_budget,
            initial_queue=config.initial_queue,
            num_candidate_routes=config.num_candidate_routes,
            max_extra_hops=config.max_extra_hops,
            clock=SlotClock(
                attempts_per_slot=config.attempts_per_slot,
                guard_time=config.slot_guard_time_s,
            ),
            faults=faults,
            guard_level=config.guard_level,
            telemetry=config.telemetry_model(),
        )
        serving_cb = None
        if on_slot is not None:
            serving_cb = lambda record: on_slot(SERVING_LINEUP_NAME, record)
        result = simulator.run(
            seed=derive_seed(seed, "serving", trial), on_slot=serving_cb
        )
        return {result.policy_name: result}, ()
    if scenario.is_multiuser:
        if faults is not None:
            raise ValueError(
                "unsupported combination: fault injection and a multi-user "
                "tenant line-up; drop with_faults() or the tenant line-up"
            )
        if config.backend != "slotted":
            raise unsupported_backend_error(
                config.backend,
                f"a multi-user tenant line-up ({len(scenario.users)} user(s))",
                "use with_backend('slotted') or drop the tenant line-up",
            )
        simulator = MultiUserSimulator(
            graph=graph,
            users=scenario.build_users(),
            horizon=config.horizon,
            num_candidate_routes=config.num_candidate_routes,
            max_extra_hops=config.max_extra_hops,
            realize=config.realize,
            physical=physical,
        )
        provider_cb = None
        if on_slot is not None:
            provider_cb = lambda record: on_slot("provider", record)
        outcome = simulator.run(
            seed=derive_seed(seed, "multiuser", trial), on_slot=provider_cb
        )
        return dict(outcome.user_results), tuple(outcome.provider_records)

    trace = config.build_trace(graph, seed=derive_seed(seed, "trace", trial))
    results = simulate_policies(
        graph,
        trace,
        scenario.build_policies(),
        total_budget=config.total_budget,
        realize=config.realize,
        seed=derive_seed(seed, "run", trial),
        on_slot=on_slot,
        physical=physical,
        backend=config.backend,
        timing=config.timing_model(),
        faults=faults,
        guard_level=config.guard_level,
        telemetry=config.telemetry_model(),
    )
    return results, ()


def _execute_trial_for_pool(scenario: Scenario, trial: int) -> TrialOutcome:
    """Top-level pool target (observers cannot cross process boundaries)."""
    return execute_trial(scenario, trial, on_slot=None)


@dataclass
class Session:
    """Executes scenarios and streams run events to observers.

    Parameters
    ----------
    workers:
        Number of worker processes for trial execution.  ``1`` (default)
        runs serially in-process; results are identical either way.
    observers:
        :class:`~repro.api.events.RunObserver` instances receiving the event
        stream.  Any observer may raise
        :class:`~repro.api.events.EarlyStop` to end the run cleanly.
    stream_slots:
        Emit per-slot events.  With ``workers > 1`` the slot events of a
        trial are replayed after the trial completes.  Disable for very
        large runs where only trial-level progress matters.
    checkpoint:
        Optional :class:`~repro.faults.RunCheckpoint`.  Completed trials
        are periodically snapshotted to disk, and a fresh run of the same
        scenario resumes from the snapshot instead of recomputing —
        resumed results are byte-identical because every trial is a pure
        function of ``(scenario, trial_index)``.
    stop_flag:
        Optional zero-argument callable polled between trials (e.g.
        :meth:`~repro.faults.InterruptGuard.stop_requested`).  When it
        returns ``True`` the run winds down cleanly after the current
        trial, marking the record ``stopped_early``.
    max_retries / worker_timeout_s:
        Supervision knobs for parallel runs (see
        :class:`~repro.faults.PoolSupervisor`): retry rounds after worker
        deaths, and the optional progress deadline that turns a hung
        worker into a retriable failure.
    """

    workers: int = 1
    observers: Sequence[RunObserver] = ()
    stream_slots: bool = True
    checkpoint: Optional[RunCheckpoint] = None
    stop_flag: Optional[Callable[[], bool]] = None
    max_retries: int = 3
    worker_timeout_s: Optional[float] = None

    def run(self, scenario: Scenario) -> RunRecord:
        """Execute every trial of ``scenario`` and return the unified record."""
        scenario.validate()
        trials = scenario.config.trials
        started = time.perf_counter()
        self._emit(
            RunStarted(
                scenario=scenario.name,
                trials=trials,
                workers=self.workers,
                kind=scenario.kind,
                lineup=tuple(scenario.lineup_names()),
            )
        )

        key: Optional[str] = None
        completed: List[TrialOutcome] = []
        if self.checkpoint is not None:
            key = checkpoint_key(scenario.to_dict())
            completed.extend(self.checkpoint.load(key)[:trials])
        resumed = len(completed)

        stopped_early = False
        recoveries = 0
        try:
            # Both modes append into `completed` as trials finish, so the
            # trials completed before an EarlyStop are preserved.
            if self.workers > 1 and trials - resumed > 1:
                recoveries = self._run_parallel(scenario, trials, completed, key)
            else:
                self._run_serial(scenario, trials, completed, key)
        except EarlyStop:
            stopped_early = True
        if self._stop_requested():
            stopped_early = True

        if self.checkpoint is not None and key is not None:
            if stopped_early or len(completed) < trials:
                self.checkpoint.save(key, completed)
            else:
                self.checkpoint.clear()

        meta = {
            "workers": self.workers,
            "requested_trials": trials,
            "completed_trials": len(completed),
            "stopped_early": stopped_early,
            "elapsed_seconds": time.perf_counter() - started,
        }
        if self.checkpoint is not None:
            meta["resumed_trials"] = resumed
        if recoveries:
            meta["worker_recoveries"] = recoveries
        record = RunRecord(
            scenario=scenario.to_dict(),
            kind=scenario.kind,
            trials=[outcome[0] for outcome in completed],
            provider_trials=[outcome[1] for outcome in completed if outcome[1]],
            meta=meta,
        )
        self._emit(
            RunCompleted(
                scenario=scenario.name,
                trials_completed=len(completed),
                elapsed_seconds=record.meta["elapsed_seconds"],
                stopped_early=stopped_early,
            ),
            swallow_early_stop=True,
        )
        return record

    # ------------------------------------------------------------------ #
    # Execution modes
    # ------------------------------------------------------------------ #
    def _stop_requested(self) -> bool:
        return self.stop_flag is not None and bool(self.stop_flag())

    def _checkpoint_progress(self, key: Optional[str], completed: List[TrialOutcome]) -> None:
        if self.checkpoint is not None and key is not None:
            self.checkpoint.maybe_save(key, completed)

    def _run_serial(
        self,
        scenario: Scenario,
        trials: int,
        completed: List[TrialOutcome],
        key: Optional[str] = None,
    ) -> None:
        for trial in range(len(completed), trials):
            if self._stop_requested():
                return
            self._emit(TrialStarted(scenario=scenario.name, trial=trial))
            outcome = execute_trial(
                scenario, trial, on_slot=self._live_slot_callback(scenario, trial)
            )
            completed.append(outcome)
            self._checkpoint_progress(key, completed)
            self._emit_trial_completed(scenario, trial, outcome)

    def _run_parallel(
        self,
        scenario: Scenario,
        trials: int,
        completed: List[TrialOutcome],
        key: Optional[str] = None,
    ) -> int:
        first = len(completed)
        tasks = [(scenario, trial) for trial in range(first, trials)]
        # Unordered completion is buffered and released as a contiguous
        # prefix, so the event stream (and any early-stop cut-off) is as
        # deterministic as the historical in-order collection.
        buffered: Dict[int, TrialOutcome] = {}
        next_index = 0
        try:
            with PoolSupervisor(
                max_workers=min(self.workers, len(tasks)),
                max_retries=self.max_retries,
                timeout_s=self.worker_timeout_s,
            ) as supervisor:
                for index, outcome in supervisor.run_unordered(
                    _execute_trial_for_pool, tasks
                ):
                    buffered[index] = outcome
                    while next_index in buffered:
                        trial = first + next_index
                        outcome = buffered.pop(next_index)
                        self._emit(TrialStarted(scenario=scenario.name, trial=trial))
                        if self.stream_slots:
                            self._replay_slots(scenario, trial, outcome)
                        completed.append(outcome)
                        self._checkpoint_progress(key, completed)
                        self._emit_trial_completed(scenario, trial, outcome)
                        next_index += 1
                    if self._stop_requested():
                        break
                return supervisor.recoveries
        except WorkerPoolError as exc:
            # Supervisor-retry exhaustion: the workers are gone, so no
            # recorder tail exists here — dump a meta-only bundle (scenario,
            # first unfinished trial, error) so the failure is still
            # replayable deterministically.
            level = effective_guard_level(scenario.config.guard_level)
            if level != "off":
                dump_bundle(
                    scenario.to_dict(), first + next_index, level, error=exc
                )
            raise

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _emit(self, event: RunEvent, swallow_early_stop: bool = False) -> None:
        for observer in self.observers:
            try:
                observer.on_event(event)
            except EarlyStop:
                if not swallow_early_stop:
                    raise

    def _live_slot_callback(self, scenario: Scenario, trial: int):
        if not self.stream_slots or not self.observers:
            return None

        def on_slot(policy_name: str, record: object) -> Optional[bool]:
            # EarlyStop propagates out of the engine through here.
            self._emit(
                SlotCompleted(
                    scenario=scenario.name,
                    trial=trial,
                    policy=policy_name,
                    record=record,
                    replayed=False,
                )
            )
            return None

        return on_slot

    def _replay_slots(self, scenario: Scenario, trial: int, outcome: TrialOutcome) -> None:
        results, provider_records = outcome
        if provider_records:
            for record in provider_records:
                self._emit(
                    SlotCompleted(
                        scenario=scenario.name,
                        trial=trial,
                        policy="provider",
                        record=record,
                        replayed=True,
                    )
                )
            return
        for name, result in results.items():
            for record in result.records:
                self._emit(
                    SlotCompleted(
                        scenario=scenario.name,
                        trial=trial,
                        policy=name,
                        record=record,
                        replayed=True,
                    )
                )

    def _emit_trial_completed(
        self, scenario: Scenario, trial: int, outcome: TrialOutcome
    ) -> None:
        results, _ = outcome
        self._emit(
            TrialCompleted(
                scenario=scenario.name,
                trial=trial,
                results={name: result.summary() for name, result in results.items()},
            )
        )


def run_scenario(
    scenario: Scenario,
    workers: int = 1,
    observers: Sequence[RunObserver] = (),
    **session_options,
) -> RunRecord:
    """Run ``scenario`` with a throwaway :class:`Session` (the one-liner API)."""
    session = Session(workers=workers, observers=tuple(observers), **session_options)
    return session.run(scenario)


def compare(
    config: Optional["ExperimentConfig"] = None,
    policies: Sequence = ("oscar", "myopic-adaptive", "myopic-fixed"),
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    workers: int = 1,
    observers: Sequence[RunObserver] = (),
    name: str = "comparison",
    **session_options,
) -> RunRecord:
    """Run a multi-trial policy comparison in one call.

    The facade equivalent of the historical
    :func:`repro.experiments.runner.run_comparison`: every trial draws a
    fresh topology and trace, every policy runs on the identical trace.
    ``policies`` accepts anything :meth:`Scenario.with_policies` does.
    Extra keyword arguments become :class:`Session` fields (``checkpoint``,
    ``stop_flag``, ``max_retries``, ...).
    """
    from repro.experiments.config import ExperimentConfig

    config = config if config is not None else ExperimentConfig.paper()
    config = config.with_run_overrides(trials, seed)
    scenario = Scenario.from_config(config, name=name).with_policies(*policies)
    return run_scenario(
        scenario, workers=workers, observers=observers, **session_options
    )
