"""Micro-benchmarks of the reproduction's performance-critical components.

These do not correspond to a paper figure; they track the cost of the two
inner loops that dominate the runtime of every experiment — the continuous
relaxation solve (Algorithm 2) and one full per-slot P2 solve — so that
performance regressions are caught before they make the figure benchmarks
unusable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.per_slot import PerSlotSolver
from repro.core.problem import SlotContext
from repro.network.routes import build_candidate_routes
from repro.network.topology import waxman_topology
from repro.solvers.allocation_problem import build_allocation_problem
from repro.solvers.relaxed import DualDecompositionSolver
from repro.workload.requests import SDPair


def _allocation_instance(num_vars: int = 12, seed: int = 5):
    rng = np.random.default_rng(seed)
    successes = rng.uniform(0.4, 0.7, size=num_vars)
    entries = [(f"v{i}", float(p)) for i, p in enumerate(successes)]
    groups = {}
    for g in range(num_vars // 2):
        members = sorted(rng.choice(num_vars, size=3, replace=False).tolist())
        groups[f"c{g}"] = (members, float(rng.uniform(6, 14)))
    return build_allocation_problem(entries, groups, utility_weight=2500.0, cost_weight=12.0)


@pytest.mark.benchmark(group="components")
def test_bench_dual_solver(benchmark):
    problem = _allocation_instance()
    solver = DualDecompositionSolver()
    solution = benchmark(solver.solve, problem)
    assert solution.feasible


def _slot_context(seed: int = 3):
    graph = waxman_topology(num_nodes=12, seed=seed)
    requests = [
        SDPair(source=graph.nodes[0], destination=graph.nodes[-1], request_id=0),
        SDPair(source=graph.nodes[1], destination=graph.nodes[-2], request_id=1),
        SDPair(source=graph.nodes[2], destination=graph.nodes[-3], request_id=2),
    ]
    candidates = build_candidate_routes(graph, [r.endpoints for r in requests], num_routes=3)
    return SlotContext(
        t=0,
        graph=graph,
        snapshot=graph.full_snapshot(),
        requests=tuple(requests),
        candidate_routes={r: tuple(candidates[r.endpoints]) for r in requests},
    )


@pytest.mark.benchmark(group="components")
def test_bench_per_slot_solve(benchmark):
    context = _slot_context()
    solver = PerSlotSolver(gibbs_iterations=20)
    solution = benchmark.pedantic(
        solver.solve,
        kwargs={"context": context, "utility_weight": 2500.0, "cost_weight": 10.0, "seed": 1},
        rounds=3,
        iterations=1,
    )
    assert solution.decision.num_served >= 1
