"""Tests for repro.experiments.plots and repro.analysis.convergence, plus the
diurnal request process added to the workload layer."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    analyse_trace,
    compare_runs,
    improvement_curve,
    iterations_to_reach,
)
from repro.experiments.plots import histogram_chart, line_chart, sparkline
from repro.solvers.gibbs import GibbsResult, GibbsSampler
from repro.workload.requests import DiurnalRequestProcess

from conftest import make_line_graph


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_resamples_long_series(self):
        assert len(sparkline(list(range(500)), width=50)) == 50

    def test_constant_series(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert len(set(line)) == 1

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_monotone_series_uses_increasing_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"


class TestLineChart:
    def test_contains_legend_and_axis(self):
        chart = line_chart({"OSCAR": [1, 2, 3], "MF": [3, 2, 1]}, title="T")
        assert "T" in chart
        assert "o=OSCAR" in chart and "x=MF" in chart
        assert "+" + "-" * 10 in chart  # part of the x-axis

    def test_height_respected(self):
        chart = line_chart({"a": [0, 1, 2]}, height=6, title="")
        # 6 grid rows + axis + legend
        assert len(chart.splitlines()) == 8

    def test_empty_series_map(self):
        assert line_chart({}, title="nothing") == "nothing"

    def test_constant_series_handled(self):
        chart = line_chart({"a": [1.0, 1.0, 1.0]})
        assert "o" in chart

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1]}, height=0)


class TestHistogramChart:
    def test_rows_per_bin_and_series(self):
        chart = histogram_chart(
            [0.0, 0.5, 1.0], {"OSCAR": [0.2, 0.8], "MF": [0.5, 0.5]}
        )
        lines = chart.splitlines()
        assert len(lines) == 4  # 2 bins x 2 series
        assert any("OSCAR" in line for line in lines)

    def test_bar_lengths_scale_with_value(self):
        chart = histogram_chart([0.0, 0.5, 1.0], {"a": [0.1, 1.0]})
        lines = chart.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_all_zero_histogram(self):
        chart = histogram_chart([0.0, 1.0], {"a": [0.0]})
        assert "#" not in chart


class TestConvergence:
    def run_sampler(self, **kwargs):
        target = (2, 1, 0)

        def objective(assignment):
            return -float(sum((a - b) ** 2 for a, b in zip(assignment, target)))

        sampler = GibbsSampler(gamma=0.5, iterations=200, track_trace=True, **kwargs)
        return sampler.optimise([3, 3, 3], objective, seed=3)

    def test_analyse_trace_fields(self):
        report = analyse_trace(self.run_sampler())
        assert report.iterations == 200
        assert report.first_hit_iteration is not None
        assert 0.0 <= report.acceptance_rate <= 1.0
        assert 0.0 < report.tail_fraction_at_best <= 1.0
        assert report.improvement >= 0.0

    def test_analyse_trace_requires_trace(self):
        result = GibbsResult(
            best_assignment=(0,), best_objective=1.0, final_assignment=(0,),
            final_objective=1.0, iterations=5, acceptance_count=1, objective_trace=(),
        )
        with pytest.raises(ValueError):
            analyse_trace(result)

    def test_improvement_curve_is_monotone(self):
        curve = improvement_curve(self.run_sampler())
        assert all(b >= a for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(self.run_sampler().best_objective)

    def test_iterations_to_reach(self):
        result = self.run_sampler()
        assert iterations_to_reach(result, result.best_objective) is not None
        assert iterations_to_reach(result, result.best_objective + 1.0) is None

    def test_compare_runs_structure(self):
        comparison = compare_runs(self.run_sampler(), self.run_sampler())
        assert set(comparison.keys()) >= {
            "objective_difference",
            "baseline_first_hit",
            "candidate_first_hit",
            "candidate_faster",
        }
        assert comparison["objective_difference"] == pytest.approx(0.0)


class TestDiurnalRequestProcess:
    def test_rate_oscillates_between_bounds(self):
        process = DiurnalRequestProcess(period=10, min_rate=1.0, max_rate=5.0)
        rates = [process.expected_rate(t) for t in range(10)]
        assert min(rates) == pytest.approx(1.0, abs=1e-9)
        assert max(rates) == pytest.approx(5.0, abs=1e-6)

    def test_rate_is_periodic(self):
        process = DiurnalRequestProcess(period=8, min_rate=0.5, max_rate=3.0)
        assert process.expected_rate(3) == pytest.approx(process.expected_rate(11))

    def test_sampling_respects_truncation(self):
        graph = make_line_graph(num_nodes=5)
        rng = np.random.default_rng(1)
        process = DiurnalRequestProcess(period=6, min_rate=4.0, max_rate=10.0, max_pairs=5)
        for t in range(30):
            assert len(process.sample(t, graph, rng)) <= 5

    def test_busy_phase_has_more_requests_on_average(self):
        graph = make_line_graph(num_nodes=6)
        rng = np.random.default_rng(2)
        process = DiurnalRequestProcess(period=20, min_rate=0.5, max_rate=5.0, max_pairs=20)
        quiet = [len(process.sample(0 + 20 * k, graph, rng)) for k in range(100)]
        busy = [len(process.sample(10 + 20 * k, graph, rng)) for k in range(100)]
        assert np.mean(busy) > np.mean(quiet)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiurnalRequestProcess(period=0)
        with pytest.raises(ValueError):
            DiurnalRequestProcess(min_rate=3.0, max_rate=1.0)
