"""Flight recorder, repro bundles and the crash-replay round trip."""

from __future__ import annotations

import dataclasses
import json
import math
import os

import pytest

from repro import api
from repro.guard.invariants import (
    FORCE_BREACH_ENV_VAR,
    GUARD_ENV_VAR,
    InvariantViolation,
)
from repro.guard.recorder import (
    BUNDLE_VERSION,
    FlightRecorder,
    build_bundle,
    bundle_dir,
    dump_bundle,
    load_bundle,
)
from repro.guard.replay import replay_bundle


@dataclasses.dataclass
class FakeRecord:
    t: int
    cost: float
    note: float = math.nan


SCENARIO = {"config": {"horizon": 5}, "policies": ["oscar"]}


# --------------------------------------------------------------------- #
# The ring buffer
# --------------------------------------------------------------------- #
def test_ring_keeps_only_the_tail():
    recorder = FlightRecorder(capacity=3)
    for t in range(10):
        recorder.record("oscar", FakeRecord(t=t, cost=1.0))
    assert recorder.slots_seen == 10
    tail = recorder.tail()
    assert [entry["record"]["t"] for entry in tail] == [7, 8, 9]
    assert all(entry["lineup"] == "oscar" for entry in tail)


def test_ring_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_records_are_jsonable_including_nan():
    recorder = FlightRecorder()
    recorder.record("oscar", FakeRecord(t=0, cost=float("inf")))
    entry = recorder.tail()[0]["record"]
    assert entry["cost"] == "inf"
    assert entry["note"] == "nan"
    json.dumps(recorder.tail())  # must not raise


# --------------------------------------------------------------------- #
# Bundles
# --------------------------------------------------------------------- #
def test_bundle_kind_classification():
    breach = InvariantViolation("x", "core", "boom", slot=1)
    assert build_bundle(SCENARIO, 0, "strict", error=breach)["content"]["kind"] == (
        "invariant-breach"
    )
    assert build_bundle(SCENARIO, 0, "strict", error=RuntimeError("?"))["content"][
        "kind"
    ] == "exception"
    assert build_bundle(SCENARIO, 0, "strict")["content"]["kind"] == "manual"


def test_content_key_ignores_environment(monkeypatch):
    monkeypatch.delenv(FORCE_BREACH_ENV_VAR, raising=False)
    # The suite itself may run under REPRO_GUARD=strict; clear it so the
    # first bundle really records an unset guard env.
    monkeypatch.delenv(GUARD_ENV_VAR, raising=False)
    first = build_bundle(SCENARIO, 0, "strict")
    monkeypatch.setenv(GUARD_ENV_VAR, "strict")
    second = build_bundle(SCENARIO, 0, "strict")
    # The env shows up in the advisory block but never in the key.
    assert first["key"] == second["key"]
    assert first["environment"][GUARD_ENV_VAR] is None
    assert second["environment"][GUARD_ENV_VAR] == "strict"


def test_content_key_tracks_content():
    base = build_bundle(SCENARIO, 0, "strict")["key"]
    assert build_bundle(SCENARIO, 1, "strict")["key"] != base
    assert build_bundle(SCENARIO, 0, "cheap")["key"] != base


def test_dump_respects_bundle_dir_env(tmp_path, monkeypatch):
    target = tmp_path / "elsewhere"
    monkeypatch.setenv("REPRO_BUNDLE_DIR", str(target))
    assert bundle_dir() == str(target)
    path = dump_bundle(SCENARIO, 0, "strict")
    assert os.path.dirname(path) == str(target)
    assert os.path.basename(path).endswith(".json")


def test_dump_load_round_trip(tmp_path):
    recorder = FlightRecorder()
    recorder.record("oscar", FakeRecord(t=0, cost=2.0))
    error = InvariantViolation("queue-finite", "core", "bad", slot=4)
    path = dump_bundle(
        SCENARIO, 3, "strict", recorder=recorder, error=error,
        directory=str(tmp_path),
    )
    bundle = load_bundle(path)
    content = bundle["content"]
    assert content["trial"] == 3
    assert content["verdict"]["check"] == "queue-finite"
    assert content["slots_seen"] == 1
    assert os.path.basename(path) == f"{bundle['key']}.json"
    # Re-dumping the identical failure lands on the same file.
    assert dump_bundle(
        SCENARIO, 3, "strict", recorder=recorder, error=error,
        directory=str(tmp_path),
    ) == path
    assert len(list(tmp_path.iterdir())) == 1


def test_load_rejects_corruption(tmp_path):
    path = dump_bundle(SCENARIO, 0, "strict", directory=str(tmp_path))
    bundle = json.loads(open(path).read())
    bundle["content"]["trial"] = 99  # tamper without updating the key
    with open(path, "w") as handle:
        json.dump(bundle, handle)
    with pytest.raises(ValueError, match="corrupt"):
        load_bundle(path)


def test_load_rejects_wrong_version(tmp_path):
    path = dump_bundle(SCENARIO, 0, "strict", directory=str(tmp_path))
    bundle = json.loads(open(path).read())
    bundle["content"]["version"] = BUNDLE_VERSION + 1
    with open(path, "w") as handle:
        json.dump(bundle, handle)
    with pytest.raises(ValueError, match="version"):
        load_bundle(path)


def test_load_rejects_non_bundle(tmp_path):
    path = tmp_path / "not-a-bundle.json"
    path.write_text("{}")
    with pytest.raises(ValueError, match="not a repro bundle"):
        load_bundle(str(path))


# --------------------------------------------------------------------- #
# Breach → bundle → replay round trip (end to end, in process)
# --------------------------------------------------------------------- #
def _tiny_scenario():
    config = api.Scenario.tiny().config.with_overrides(
        horizon=6, trials=1, guard_level="strict"
    )
    return api.Scenario.from_config(config, name="guard-replay").with_policies("oscar")


def test_forced_breach_dumps_bundle_and_replays(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path / "bundles"))
    monkeypatch.setenv(FORCE_BREACH_ENV_VAR, "2")
    scenario = _tiny_scenario()
    with pytest.raises(InvariantViolation) as info:
        api.execute_trial(scenario, 0)
    error = info.value
    assert error.check == "forced-breach" and error.slot == 2
    path = error.bundle_path
    assert path is not None and os.path.exists(path)

    # Replay from a clean environment: the bundle re-pins everything.
    monkeypatch.delenv(FORCE_BREACH_ENV_VAR, raising=False)
    monkeypatch.delenv(GUARD_ENV_VAR, raising=False)
    result = replay_bundle(path)
    assert result.matched, result.describe()
    assert result.kind == "invariant-breach"
    assert result.replay_key == result.source_key
    assert "MATCH" in result.describe()


def test_unhandled_exception_dumps_bundle(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path / "bundles"))
    scenario = _tiny_scenario()

    def explode(lineup, record):
        raise RuntimeError("observer blew up")

    with pytest.raises(RuntimeError, match="observer blew up"):
        api.execute_trial(scenario, 0, on_slot=explode)
    bundles = list((tmp_path / "bundles").glob("*.json"))
    assert len(bundles) == 1
    assert load_bundle(str(bundles[0]))["content"]["kind"] == "exception"


def test_dump_failure_never_masks_the_original_error(monkeypatch, tmp_path, capsys):
    # The recorder is best-effort: if snapshotting or writing the bundle
    # blows up, the caller must still see the real exception.
    monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path / "bundles"))
    scenario = _tiny_scenario()

    def broken_dump(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr("repro.api.session.dump_bundle", broken_dump)

    def explode(lineup, record):
        raise RuntimeError("the real failure")

    with pytest.raises(RuntimeError, match="the real failure"):
        api.execute_trial(scenario, 0, on_slot=explode)
    assert "could not dump a repro bundle" in capsys.readouterr().err


def test_guard_off_never_dumps(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path / "bundles"))
    monkeypatch.delenv(GUARD_ENV_VAR, raising=False)
    config = api.Scenario.tiny().config.with_overrides(horizon=6, trials=1)
    scenario = api.Scenario.from_config(config, name="off").with_policies("oscar")

    def explode(lineup, record):
        raise RuntimeError("no recorder armed")

    with pytest.raises(RuntimeError):
        api.execute_trial(scenario, 0, on_slot=explode)
    assert not (tmp_path / "bundles").exists()
