"""Figure 10 — throughput and delivered fidelity vs. classical-signaling latency.

The slotted engine the paper evaluates on assumes entanglement outcomes are
known instantaneously at the end of each slot.  The event-driven backend
(:mod:`repro.simulation.eventsim`) drops that assumption: link-level pairs
are heralded one classical one-way latency after generation, swap outcomes
propagate hop by hop to the end nodes, and a request only counts as served
when its end-to-end confirmation arrives before the slot deadline.  This
figure sweeps the classical signaling latency (as a fraction of the
entanglement-attempt window) on both backends and reports

* **(a) realized throughput** — the fraction of requests whose end-to-end
  entanglement is confirmed in time.  The slotted series is flat (latency
  is invisible to it) and anchors the event series, which matches it
  exactly at zero latency and decays as confirmations start missing the
  deadline, and
* **(b) mean delivered fidelity** — with the physical layer enabled, pairs
  now decohere over their *actual* dwell times (generation to swap
  consumption), so latency costs fidelity before it costs throughput.

OSCAR runs on both backends at every latency; the zero-latency column
doubles as a standing regression check that the two backends agree.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro import api
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_series_table
from repro.network.channels import ATTEMPT_DURATION_S

#: Latencies swept, as fractions of the per-slot entanglement-attempt window
#: (``attempts_per_slot × ATTEMPT_DURATION_S``).  Zero anchors the
#: slotted/event equivalence; the tail reaches deep into deadline-miss
#: territory for multi-hop routes.
LATENCY_FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.4)

#: Physical-layer setting used when the caller's config leaves it disabled:
#: near-deterministic swapping plus a memory-cutoff fidelity, so the
#: event backend's dwell-time decoherence has a threshold to cross.
PHYSICAL_DEFAULTS = {
    "swap_success": 0.98,
    "cutoff_fidelity": 0.25,
}


def attempt_window_s(config: ExperimentConfig) -> float:
    """Wall-clock length of one slot's entanglement-attempt window."""
    return config.attempts_per_slot * ATTEMPT_DURATION_S


def sweep_latencies_for(config: ExperimentConfig) -> List[float]:
    """The swept one-way latencies in seconds (:data:`LATENCY_FRACTIONS`)."""
    window = attempt_window_s(config)
    return [round(fraction * window, 9) for fraction in LATENCY_FRACTIONS]


@dataclass
class Figure10Result:
    """Throughput and delivered fidelity vs. classical-signaling latency."""

    config: ExperimentConfig
    latencies: List[float]
    throughput: Dict[str, List[float]]
    delivered_fidelity: Dict[str, List[float]]
    study: Optional["api.StudyResult"] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable payload built on the StudyResult schema."""
        return {
            "figure": "fig10",
            "config": dataclasses.asdict(self.config),
            "latencies": list(self.latencies),
            "throughput": {k: list(v) for k, v in self.throughput.items()},
            "delivered_fidelity": {
                k: list(v) for k, v in self.delivered_fidelity.items()
            },
            "event_stats": self.study.event_stats() if self.study is not None else None,
            "study": self.study.to_dict() if self.study is not None else None,
        }

    def format_tables(self) -> str:
        """Both panels of Fig. 10 as plain-text tables."""
        return "\n\n".join(
            [
                format_series_table(
                    "latency (s)",
                    self.latencies,
                    self.throughput,
                    title="Fig. 10(a) Realized throughput vs. signaling latency",
                ),
                format_series_table(
                    "latency (s)",
                    self.latencies,
                    self.delivered_fidelity,
                    title="Fig. 10(b) Mean delivered fidelity vs. signaling latency",
                ),
            ]
        )


def fig10_config(
    config: ExperimentConfig, explicit: Optional[Sequence[str]] = None
) -> ExperimentConfig:
    """``config`` with the figure's physical layer applied.

    Same contract as :func:`repro.experiments.fig9_fidelity.fig9_config`:
    without ``explicit`` an already-enabled physical layer is taken as
    configured, a disabled one gets :data:`PHYSICAL_DEFAULTS` switched on;
    with ``explicit`` (the CLI path) the pinned ``physical_*`` fields keep
    the user's values while the remaining figure defaults still apply.
    The backend/latency fields are left alone — the study axes own them.
    """
    if explicit is None:
        if config.physical_enabled:
            return config
        explicit = ()
    pinned = set(explicit)
    overrides: Dict[str, object] = {"physical_enabled": True}
    for key, value in PHYSICAL_DEFAULTS.items():
        name = f"physical_{key}"
        if name not in pinned:
            overrides[name] = value
    return config.with_overrides(**overrides)


def build_study(
    config: ExperimentConfig, latencies: Sequence[float], name: str = "fig10"
) -> "api.Study":
    """The declarative form of the sweep: backend × latency, OSCAR line-up."""
    scenario = api.Scenario.from_config(fig10_config(config), name=name)
    scenario = scenario.with_policies("oscar")
    return (
        api.Study(name)
        .base(scenario)
        .over("timing.backend", ["slotted", "event"], label="backend")
        .over(
            "timing.signaling_latency_s",
            [float(latency) for latency in latencies],
            label="latency_s",
        )
    )


def _split_by_backend(
    result: "api.StudyResult", metric: str
) -> Dict[str, List[float]]:
    """Per-``"policy (backend)"`` series over the latency axis (grid order)."""
    series: Dict[str, List[float]] = {}
    for point, summary in zip(result.points, result.summaries()):
        backend = point.coordinates["backend"]
        for policy, metrics in summary.items():
            aggregate = metrics.get(metric)
            value = float(aggregate.mean) if aggregate is not None else float("nan")
            series.setdefault(f"{policy} ({backend})", []).append(value)
    return series


def run(
    config: Optional[ExperimentConfig] = None,
    latencies: Optional[Sequence[float]] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    workers: int = 1,
    store: Union[None, str, "api.ResultStore"] = None,
) -> Figure10Result:
    """Run the backend × latency sweep and collect both panels."""
    config = (config or ExperimentConfig.paper()).with_run_overrides(trials, seed)
    config = fig10_config(config)
    latencies = (
        list(latencies) if latencies is not None else sweep_latencies_for(config)
    )

    result = build_study(config, latencies).run(workers=workers, store=store)
    return Figure10Result(
        config=config,
        latencies=[float(latency) for latency in latencies],
        throughput=_split_by_backend(result, "realized_success_rate"),
        delivered_fidelity=_split_by_backend(result, "mean_delivered_fidelity"),
        study=result,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run(ExperimentConfig.tiny(), trials=1)
    print(result.format_tables())


if __name__ == "__main__":  # pragma: no cover
    main()
