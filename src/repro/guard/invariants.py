"""Runtime invariant guard: per-layer semantic checks of a running simulation.

The reproduction's correctness contract so far has been "tables
byte-identical across layouts" — a strong *relative* guarantee that says
nothing about the *semantic* invariants of the paper: feasible integer
allocations against the slot's capacity rows, Lyapunov virtual-queue
conservation, fidelities inside ``[0, 1]``, serving/backlog accounting that
sums up, fault availability consistent with the precompiled schedule.
:class:`InvariantGuard` checks those invariants while a simulation runs.

The guard is strictly **observational**: every check only reads state and
either passes or raises :class:`InvariantViolation`.  It never draws from a
random stream and never mutates simulator state, so enabling it cannot
change any result — ``guard_level="strict"`` produces tables byte-identical
to ``"off"``.  At level ``"off"`` no guard object is built at all
(:meth:`InvariantGuard.build` returns ``None``) and every call site is a
single ``is not None`` test, so disabled runs keep their historical cost.

Levels
------
``off``
    No checks, no guard object, no ``diagnostics["guard"]`` entry.
``cheap``
    O(1)-per-slot accounting checks: servability of the served set, queue
    non-negativity, fidelity ranges, counter conservation at run end.
``strict``
    Everything in ``cheap`` plus full per-slot constraint-row arithmetic,
    virtual-queue recursion replay, kernel dual-bound certification and a
    fault-schedule availability recount.

The environment variable ``REPRO_GUARD`` overrides the configured level at
guard-construction time (see :func:`effective_guard_level`) without touching
the configuration itself — scenario dictionaries, checkpoint keys and result
stores are identical whether the override is set or not.
``REPRO_FORCE_BREACH=<slot>`` injects a deterministic synthetic breach at
the given slot (used by the crash-replay round-trip tests and CI).
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: The three guard levels, in increasing order of scrutiny.
GUARD_LEVELS = ("off", "cheap", "strict")

#: Environment override of the configured guard level.
GUARD_ENV_VAR = "REPRO_GUARD"

#: Environment hook injecting a synthetic breach at one slot (an integer).
FORCE_BREACH_ENV_VAR = "REPRO_FORCE_BREACH"

#: Tolerance of the floating-point conservation and bound checks.  Loose
#: enough to absorb accumulated rounding over long horizons, tight enough
#: that any real accounting bug (off by one request/qubit) trips it.
_TOLERANCE = 1e-6


def effective_guard_level(configured: str) -> str:
    """The guard level actually in force: ``REPRO_GUARD`` wins over config.

    The override is applied here — at guard-construction time — rather than
    inside :class:`~repro.experiments.config.ExperimentConfig`, so scenario
    dictionaries and content-addressed store/checkpoint keys stay identical
    whether the variable is set or not, and worker processes (which inherit
    the environment) apply the same level as the parent.
    """
    override = os.environ.get(GUARD_ENV_VAR, "").strip().lower()
    if override:
        if override not in GUARD_LEVELS:
            raise ValueError(
                f"invalid {GUARD_ENV_VAR}={override!r}; "
                f"choose from {', '.join(GUARD_LEVELS)}"
            )
        return override
    return configured


def forced_breach_slot() -> Optional[int]:
    """The slot at which a synthetic breach is injected, or ``None``."""
    raw = os.environ.get(FORCE_BREACH_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {FORCE_BREACH_ENV_VAR}={raw!r}; expected an integer slot"
        )


class InvariantViolation(RuntimeError):
    """One failed invariant check.

    Carries the check name, the layer pack it belongs to, the slot (when
    per-slot) and a details mapping — everything the flight recorder needs
    to write a repro bundle and the replay harness needs to re-assert the
    identical breach.  Picklable, so a breach inside a worker process
    crosses the pool boundary intact.
    """

    def __init__(
        self,
        check: str,
        layer: str,
        message: str,
        slot: Optional[int] = None,
        details: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.check = str(check)
        self.layer = str(layer)
        self.slot = slot if slot is None else int(slot)
        self.details = dict(details) if details else {}
        where = f" (slot {slot})" if slot is not None else ""
        super().__init__(f"[{layer}:{check}]{where} {message}")
        self.message = str(message)
        #: Filled in by the crash-bundle path after the bundle is written.
        self.bundle_path: Optional[str] = None

    def __reduce__(self):
        return (
            self.__class__,
            (self.check, self.layer, self.message, self.slot, self.details),
            {"bundle_path": self.bundle_path},
        )

    def verdict(self) -> Dict[str, object]:
        """The JSON-friendly description stored in repro bundles."""
        return {
            "check": self.check,
            "layer": self.layer,
            "slot": self.slot,
            "message": self.message,
            # bundle_path is post-dump bookkeeping, not breach identity —
            # including it would make the replayed bundle's key diverge.
            "details": {
                key: repr(value)
                for key, value in self.details.items()
                if key != "bundle_path"
            },
        }

    def matches(self, verdict: Mapping[str, object]) -> bool:
        """Whether this breach is the same (check, layer, slot) as ``verdict``."""
        return (
            self.check == verdict.get("check")
            and self.layer == verdict.get("layer")
            and self.slot == verdict.get("slot")
        )


class InvariantGuard:
    """Per-layer invariant check packs over one simulation run.

    Build one per run with :meth:`build` (which applies the environment
    override and returns ``None`` at level ``off``), call the ``check_*``
    methods from the layer they verify, and read :meth:`stats` at run end —
    the summable counters surface as ``diagnostics["guard"]``.
    """

    __slots__ = ("level", "strict", "force_slot", "counters", "_forced_fired")

    def __init__(self, level: str, force_slot: Optional[int] = None) -> None:
        if level not in GUARD_LEVELS or level == "off":
            raise ValueError(
                f"an InvariantGuard runs at 'cheap' or 'strict', got {level!r}"
            )
        self.level = level
        self.strict = level == "strict"
        self.force_slot = force_slot
        self._forced_fired = False
        self.counters: Dict[str, int] = {
            "slots": 0,
            "checks": 0,
            "breaches": 0,
            "checks_core": 0,
            "checks_kernel": 0,
            "checks_physical": 0,
            "checks_serving": 0,
            "checks_faults": 0,
        }

    @classmethod
    def build(
        cls, level: str = "off", force_slot: Optional[int] = None
    ) -> Optional["InvariantGuard"]:
        """The guard for ``level`` after env overrides; ``None`` when off.

        ``force_slot`` defaults to the ``REPRO_FORCE_BREACH`` environment
        hook; pass an explicit integer to force a breach programmatically
        (the replay harness does).
        """
        effective = effective_guard_level(level)
        if effective not in GUARD_LEVELS:
            raise ValueError(
                f"unknown guard level {level!r}; choose from {', '.join(GUARD_LEVELS)}"
            )
        if effective == "off":
            return None
        if force_slot is None:
            force_slot = forced_breach_slot()
        return cls(effective, force_slot=force_slot)

    def stats(self) -> Dict[str, int]:
        """Summable check counters (the ``diagnostics["guard"]`` mapping)."""
        return dict(self.counters)

    # ------------------------------------------------------------------ #
    # Breach plumbing
    # ------------------------------------------------------------------ #
    def _breach(
        self,
        check: str,
        layer: str,
        message: str,
        slot: Optional[int] = None,
        details: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.counters["breaches"] += 1
        raise InvariantViolation(check, layer, message, slot=slot, details=details)

    def _count(self, layer: str, n: int = 1) -> None:
        self.counters["checks"] += n
        self.counters[f"checks_{layer}"] += n

    # ------------------------------------------------------------------ #
    # Slot lifecycle (both simulation backends and the serving loop)
    # ------------------------------------------------------------------ #
    def begin_slot(self, t: int) -> None:
        """Mark the start of slot ``t``; fires the forced synthetic breach."""
        self.counters["slots"] += 1
        if (
            self.force_slot is not None
            and not self._forced_fired
            and t >= self.force_slot
        ):
            self._forced_fired = True
            self._breach(
                "forced-breach",
                "guard",
                f"synthetic breach injected at slot {t} "
                f"({FORCE_BREACH_ENV_VAR}={self.force_slot})",
                slot=t,
                details={"requested_slot": self.force_slot},
            )

    # ------------------------------------------------------------------ #
    # Core + kernel packs: the per-slot decision
    # ------------------------------------------------------------------ #
    def check_decision(
        self, context, decision, queue_length: Optional[float] = None
    ) -> None:
        """Core/kernel invariants of one slot decision.

        Core: the served set is a subset of the servable requests and the
        Lyapunov queue is non-negative and finite.  Kernel (strict): the
        integer allocation satisfies every node, edge and budget constraint
        row of the slot — the same arithmetic the compiled structure's rows
        encode, recomputed independently from the raw allocation.
        """
        t = context.t
        self._count("core")
        servable = set(context.servable_requests())
        overserved = [r for r in decision.served_requests if r not in servable]
        if overserved:
            self._breach(
                "served-subset",
                "core",
                f"{len(overserved)} served request(s) had no candidate route",
                slot=t,
                details={"requests": overserved},
            )
        if queue_length is not None:
            if math.isnan(queue_length) or math.isinf(queue_length):
                self._breach(
                    "queue-finite",
                    "core",
                    f"virtual queue length is {queue_length}",
                    slot=t,
                )
            if queue_length < 0.0:
                self._breach(
                    "queue-nonnegative",
                    "core",
                    f"virtual queue length went negative: {queue_length}",
                    slot=t,
                )
        cost = decision.cost()
        if cost < 0:
            self._breach(
                "cost-nonnegative", "core", f"slot cost is negative: {cost}", slot=t
            )
        if not self.strict:
            return
        # Strict: recompute every constraint row from the raw allocation.
        self._count("kernel")
        snapshot = context.snapshot
        for node, used in decision.node_usage().items():
            capacity = snapshot.available_qubits(node)
            if used > capacity:
                self._breach(
                    "node-row",
                    "kernel",
                    f"node {node!r} allocation {used} exceeds capacity {capacity}",
                    slot=t,
                    details={"node": node, "used": used, "capacity": capacity},
                )
        for key, used in decision.edge_usage().items():
            capacity = snapshot.available_channels(key)
            if used > capacity:
                self._breach(
                    "edge-row",
                    "kernel",
                    f"edge {key!r} allocation {used} exceeds capacity {capacity}",
                    slot=t,
                    details={"edge": key, "used": used, "capacity": capacity},
                )
        for (request, key), value in decision.allocation.items():
            if value < 1:
                self._breach(
                    "allocation-integral",
                    "kernel",
                    f"allocation for {request} on {key} is {value} < 1",
                    slot=t,
                )

    def check_objective(self, value: float, slot: Optional[int] = None) -> None:
        """No-NaN check of a per-slot objective/utility value.

        ``-inf`` is a legitimate utility (a zero success probability under
        the log); ``NaN`` and ``+inf`` never are.
        """
        self._count("kernel")
        if math.isnan(value) or value == math.inf:
            self._breach(
                "objective-finite",
                "kernel",
                f"objective/utility is {value}",
                slot=slot,
            )

    def check_kernel_solution(self, relaxed, rounded) -> None:
        """Kernel pack: no NaN in the outcome objectives (strict only).

        Called from :meth:`SlotKernel._build_outcome` via the ambient hook
        (:mod:`repro.guard.hooks`) — the single point every solved pair
        passes through.  The relaxed and rounded objectives may legitimately
        be ``-inf`` (an infeasible/zero-probability combination under the
        log); ``NaN`` and ``+inf`` never are.
        """
        if not self.strict:
            return
        self._count("kernel")
        for label, objective in (
            ("relaxed", relaxed.objective),
            ("rounded", rounded.objective),
        ):
            value = float(objective)
            if math.isnan(value) or value == math.inf:
                self._breach(
                    f"{label}-objective-finite",
                    "kernel",
                    f"{label} objective is {value}",
                )

    def check_kernel_dual(
        self,
        best_dual: float,
        best_primal: float,
        multipliers=None,
        gap_tolerance: float = 0.0,
    ) -> None:
        """Kernel pack: solver-internal dual certificates (strict only).

        Called from :meth:`SlotKernel._solve` via the ambient hook just
        before the solution is finalised: the dual multipliers are finite
        and non-negative, and the best dual value actually bounds the best
        feasible primal value from above (weak duality — within the
        solver's certified gap tolerance).  ``best_dual`` may be ``inf``
        when the solve took a direct/exact shortcut and never produced a
        dual iterate; the bound check is skipped then.
        """
        if not self.strict:
            return
        self._count("kernel")
        if multipliers is not None:
            values = [float(v) for v in multipliers]
            if any(math.isnan(v) or math.isinf(v) for v in values):
                self._breach(
                    "multipliers-finite",
                    "kernel",
                    "dual multipliers contain NaN/inf",
                    details={"multipliers": values},
                )
            if any(v < 0.0 for v in values):
                self._breach(
                    "multipliers-nonnegative",
                    "kernel",
                    "dual multipliers went negative",
                    details={"multipliers": values},
                )
        if math.isfinite(best_dual) and math.isfinite(best_primal):
            slack = gap_tolerance * max(1.0, abs(best_primal)) + _TOLERANCE
            if best_dual < best_primal - slack:
                self._breach(
                    "dual-bounds-primal",
                    "kernel",
                    f"dual bound {best_dual} fell below the feasible primal "
                    f"value {best_primal}",
                    details={
                        "best_dual": best_dual,
                        "best_primal": best_primal,
                        "gap_tolerance": gap_tolerance,
                    },
                )

    def check_queue_history(
        self,
        history: Sequence[float],
        per_slot_budget: Optional[float] = None,
        costs: Optional[Sequence[float]] = None,
    ) -> None:
        """Core pack: the whole virtual-queue trajectory at run end.

        Cheap: every length is non-negative and finite.  Strict, when the
        per-slot costs are known: replay the recursion
        ``q_{t+1} = max(0, q_t + c_t − C/T)`` and require the recorded
        history to match it exactly (within float tolerance).
        """
        self._count("core")
        for index, value in enumerate(history):
            if math.isnan(value) or math.isinf(value) or value < 0.0:
                self._breach(
                    "queue-history",
                    "core",
                    f"virtual queue history[{index}] is {value}",
                    slot=index,
                )
        if (
            self.strict
            and per_slot_budget is not None
            and costs is not None
            and len(history) == len(costs) + 1
        ):
            self._count("core")
            for index, cost in enumerate(costs):
                expected = max(0.0, history[index] + float(cost) - per_slot_budget)
                observed = history[index + 1]
                if abs(observed - expected) > _TOLERANCE * max(1.0, expected):
                    self._breach(
                        "queue-conservation",
                        "core",
                        f"queue update at slot {index} recorded {observed}, "
                        f"recursion gives {expected}",
                        slot=index,
                        details={
                            "previous": history[index],
                            "cost": cost,
                            "per_slot_budget": per_slot_budget,
                        },
                    )

    def check_policy_final(self, policy) -> None:
        """Core pack at run end, introspecting the policy's virtual queue.

        Works for any policy exposing a ``virtual_queue`` (OSCAR and the
        Lyapunov-style baselines); silently skips policies without one.
        """
        queue = getattr(policy, "virtual_queue", None)
        history = getattr(queue, "history", None)
        if not history:
            return
        costs = None
        tracker = getattr(policy, "budget_tracker", None)
        if tracker is not None:
            costs = getattr(tracker, "per_slot_costs", None)
        self.check_queue_history(
            history,
            per_slot_budget=getattr(queue, "per_slot_budget", None),
            costs=costs,
        )

    # ------------------------------------------------------------------ #
    # Physical pack
    # ------------------------------------------------------------------ #
    def check_fidelities(
        self,
        fidelities: Sequence[float],
        slot: Optional[int] = None,
        model=None,
    ) -> None:
        """Physical pack: delivered fidelities live in ``[0, 1]``.

        Strict, with a model: decoherence is monotone non-increasing —
        waiting out the slot dwell can never raise a fidelity.
        """
        self._count("physical")
        for value in fidelities:
            if math.isnan(value) or not 0.0 <= value <= 1.0:
                self._breach(
                    "fidelity-range",
                    "physical",
                    f"fidelity {value} outside [0, 1]",
                    slot=slot,
                )
        if self.strict and model is not None and fidelities:
            self._count("physical")
            for value in fidelities:
                if value <= 0.0:
                    continue
                decayed = model.decohered_fidelity(value)
                if decayed > value + _TOLERANCE:
                    self._breach(
                        "decoherence-monotone",
                        "physical",
                        f"decoherence raised fidelity {value} to {decayed}",
                        slot=slot,
                        details={"dwell_time": model.dwell_time},
                    )

    def check_physical_stats(self, stats: Optional[Mapping[str, float]]) -> None:
        """Physical pack at run end: engine counter conservation.

        Every routed request either lost a link or became an attempt; every
        attempt fails at exactly one stage or is delivered; the
        fidelity-target subset cannot exceed the deliveries; the fidelity
        accumulator is bounded by one per delivery.
        """
        if not stats:
            return
        self._count("physical")
        requests = stats.get("requests", 0)
        attempts = stats.get("attempts", 0)
        link_failures = stats.get("link_failures", 0)
        if requests != attempts + link_failures:
            self._breach(
                "physical-request-conservation",
                "physical",
                f"requests ({requests}) != attempts ({attempts}) + "
                f"link_failures ({link_failures})",
                details=dict(stats),
            )
        delivered = stats.get("delivered", 0)
        staged = (
            stats.get("purify_failures", 0)
            + stats.get("cutoff_discards", 0)
            + stats.get("swap_failures", 0)
            + delivered
        )
        if attempts != staged:
            self._breach(
                "physical-attempt-conservation",
                "physical",
                f"attempts ({attempts}) != stage outcomes ({staged})",
                details=dict(stats),
            )
        if stats.get("fidelity_served", 0) > delivered:
            self._breach(
                "physical-fidelity-subset",
                "physical",
                f"fidelity_served ({stats.get('fidelity_served')}) exceeds "
                f"delivered ({delivered})",
                details=dict(stats),
            )
        fidelity_sum = float(stats.get("fidelity_sum", 0.0))
        if fidelity_sum < -_TOLERANCE or fidelity_sum > delivered + _TOLERANCE:
            self._breach(
                "physical-fidelity-sum",
                "physical",
                f"fidelity_sum ({fidelity_sum}) outside [0, delivered={delivered}]",
                details=dict(stats),
            )

    # ------------------------------------------------------------------ #
    # Serving pack
    # ------------------------------------------------------------------ #
    def check_serving_slot(
        self,
        t: int,
        entries,
        merged_backlog: int,
        queue_length: float,
    ) -> None:
        """Serving pack per merge slot: shard entries sum to the merged state."""
        self._count("serving")
        if math.isnan(queue_length) or queue_length < 0.0:
            self._breach(
                "serving-queue",
                "serving",
                f"serving virtual queue is {queue_length}",
                slot=t,
            )
        recomputed = sum(entry.backlog for entry in entries)
        if recomputed != merged_backlog:
            self._breach(
                "serving-backlog-merge",
                "serving",
                f"merged backlog {merged_backlog} != per-shard sum {recomputed}",
                slot=t,
            )
        if self.strict:
            self._count("serving")
            for entry in entries:
                if len(entry.realized) != entry.served:
                    self._breach(
                        "serving-realization-shape",
                        "serving",
                        f"session {entry.session_id} served {entry.served} but "
                        f"realized {len(entry.realized)} request(s)",
                        slot=t,
                    )
                if entry.served < 0 or entry.backlog < 0:
                    self._breach(
                        "serving-entry-range",
                        "serving",
                        f"session {entry.session_id} has negative accounting",
                        slot=t,
                    )

    def check_serving_totals(self, counters: Mapping[str, float]) -> None:
        """Serving pack at run end: session and request accounting closes."""
        self._count("serving")
        arrived = counters.get("sessions_arrived", 0)
        admitted = counters.get("sessions_admitted", 0)
        rejected = counters.get("sessions_rejected", 0)
        if arrived != admitted + rejected:
            self._breach(
                "serving-admission-conservation",
                "serving",
                f"sessions_arrived ({arrived}) != admitted ({admitted}) + "
                f"rejected ({rejected})",
                details=dict(counters),
            )
        if counters.get("sessions_departed", 0) > admitted:
            self._breach(
                "serving-departure-bound",
                "serving",
                f"sessions_departed ({counters.get('sessions_departed')}) exceeds "
                f"admitted ({admitted})",
                details=dict(counters),
            )
        if counters.get("requests_realized", 0) > counters.get("requests_served", 0):
            self._breach(
                "serving-realization-bound",
                "serving",
                f"requests_realized ({counters.get('requests_realized')}) exceeds "
                f"requests_served ({counters.get('requests_served')})",
                details=dict(counters),
            )

    # ------------------------------------------------------------------ #
    # Faults pack
    # ------------------------------------------------------------------ #
    def check_fault_stats(self, schedule, stats: Mapping[str, float]) -> None:
        """Faults pack at run end: accounting matches the precompiled schedule.

        Cheap: the element-slot totals are consistent with the number of
        observed slots and the derived availability lands in ``[0, 1]``.
        Strict: recount the down element-slots directly from the schedule's
        per-slot states and require an exact match.
        """
        self._count("faults")
        slots = int(stats.get("slots", 0))
        element_slots = int(stats.get("element_slots", 0))
        down = int(stats.get("down_element_slots", 0))
        expected_elements = slots * schedule.num_elements
        if element_slots != expected_elements:
            self._breach(
                "fault-element-slots",
                "faults",
                f"element_slots ({element_slots}) != slots ({slots}) × "
                f"num_elements ({schedule.num_elements})",
                details=dict(stats),
            )
        if not 0 <= down <= max(element_slots, 0):
            self._breach(
                "fault-down-bound",
                "faults",
                f"down_element_slots ({down}) outside [0, {element_slots}]",
                details=dict(stats),
            )
        if self.strict:
            self._count("faults")
            recount = 0
            for t in range(slots):
                state = schedule.state_at(t)
                if state:
                    recount += state.down_elements
                availability = schedule.availability_at(t)
                if not 0.0 <= availability <= 1.0:
                    self._breach(
                        "fault-availability-range",
                        "faults",
                        f"availability_at({t}) = {availability} outside [0, 1]",
                        slot=t,
                    )
            if recount != down:
                self._breach(
                    "fault-schedule-recount",
                    "faults",
                    f"down_element_slots ({down}) disagrees with a schedule "
                    f"recount ({recount}) over {slots} slot(s)",
                    details=dict(stats),
                )


def merge_guard_stats(stats_mappings) -> Optional[Dict[str, int]]:
    """Sum guard counter mappings; ``None`` when none are present.

    Same merge semantics as the kernel stats
    (:func:`repro.analysis.stats.merge_stat_mappings` with the int cast).
    """
    from repro.analysis.stats import merge_stat_mappings

    return merge_stat_mappings(stats_mappings, cast=int)
