"""Ambient guard hook: lets deep layers reach the active guard.

The solver kernel sits several call frames below the simulation loop and
its public signatures are shared by every policy; threading a guard handle
through them would churn every call site for a purely observational check.
Instead the simulation loop *activates* its guard for the duration of one
run and the kernel asks :func:`get` for it — a module-level global, set and
cleared by the :func:`activate` context manager.

Runs are single-threaded per process (parallelism is process-based through
the supervisor pool), so a plain global is safe; each worker process
activates its own guard.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.guard.invariants import InvariantGuard

_ACTIVE: Optional[InvariantGuard] = None


def get() -> Optional[InvariantGuard]:
    """The guard active in this process, or ``None``."""
    return _ACTIVE


@contextmanager
def activate(guard: Optional[InvariantGuard]) -> Iterator[Optional[InvariantGuard]]:
    """Make ``guard`` the ambient guard while the block runs.

    Passing ``None`` is allowed and leaves the ambient slot empty, so call
    sites can wrap their loop unconditionally.  Nested activations restore
    the previous guard on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = guard
    try:
        yield guard
    finally:
        _ACTIVE = previous
