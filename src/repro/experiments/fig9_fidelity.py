"""Figure 9 — delivered fidelity and fidelity-constrained throughput vs. budget.

This figure goes beyond the paper: with the physical-layer co-simulation
(:mod:`repro.simulation.physical`) enabled, "served" is no longer the end of
the story — a routed request must also survive purification, memory
decoherence and entanglement swapping, and a delivery only *counts* when its
end-to-end fidelity meets the target.  The figure sweeps the qubit budget
(the same axis as Fig. 5) in fidelity-constrained mode and reports

* **(a) mean delivered fidelity** — what quality the physical layer actually
  hands to applications at each budget level (more budget → more channels →
  more affordable purification rounds per link), and
* **(b) fidelity-constrained service rate** — the fraction of all requests
  delivered at or above the target, i.e. the throughput an application with
  a hard fidelity requirement experiences.

Policies are re-ranked through the same fidelity model the engines use
(routes that cannot deliver the target even fully purified are filtered
before route selection), so OSCAR and the baselines all face the identical
constraint.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro import api
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5_budget import sweep_budgets_for
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import ComparisonResult

#: Physical-layer setting used when the caller's config leaves it disabled:
#: near-deterministic swapping, two requested purification rounds per link
#: (affordable only where the allocation pays for them) and a hard 0.6
#: delivered-fidelity target enforced in fidelity-constrained mode.
PHYSICAL_DEFAULTS = {
    "swap_success": 0.98,
    "purify_rounds": 2,
    "fidelity_target": 0.6,
    "fidelity_constrained": True,
}


@dataclass
class Figure9Result:
    """Delivered fidelity and fidelity-constrained throughput vs. the budget."""

    config: ExperimentConfig
    budgets: List[float]
    delivered_fidelity: Dict[str, List[float]]
    fidelity_throughput: Dict[str, List[float]]
    delivered_rate: Dict[str, List[float]]
    comparisons: List[ComparisonResult] = field(default_factory=list, repr=False)
    study: Optional["api.StudyResult"] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable payload built on the StudyResult schema."""
        return {
            "figure": "fig9",
            "config": dataclasses.asdict(self.config),
            "budgets": list(self.budgets),
            "delivered_fidelity": {k: list(v) for k, v in self.delivered_fidelity.items()},
            "fidelity_throughput": {k: list(v) for k, v in self.fidelity_throughput.items()},
            "delivered_rate": {k: list(v) for k, v in self.delivered_rate.items()},
            "physical_stats": self.study.physical_stats() if self.study is not None else None,
            "study": self.study.to_dict() if self.study is not None else None,
        }

    def format_tables(self) -> str:
        """Both panels of Fig. 9 as plain-text tables."""
        return "\n\n".join(
            [
                format_series_table(
                    "budget C",
                    self.budgets,
                    self.delivered_fidelity,
                    title="Fig. 9(a) Mean delivered fidelity vs. budget",
                ),
                format_series_table(
                    "budget C",
                    self.budgets,
                    self.fidelity_throughput,
                    title="Fig. 9(b) Fidelity-constrained service rate vs. budget",
                ),
            ]
        )


def fig9_config(
    config: ExperimentConfig, explicit: Optional[Sequence[str]] = None
) -> ExperimentConfig:
    """``config`` with the figure's physical layer applied.

    Without ``explicit`` (the library path), a config that already enables
    the physical layer is taken exactly as configured — enabling it is the
    caller's statement of intent — and a disabled one gets the figure's
    defaults (:data:`PHYSICAL_DEFAULTS`) switched on.

    ``explicit`` is the CLI path: the ``physical_*`` field names the user
    pinned with flags.  Those keep the user's values (even when a value
    coincides with a field default, e.g. ``--swap-p 1.0``) while every
    other default of the figure still applies — so a bare ``--physical``
    does not strip the fidelity target the figure is defined by.  The
    result always has the layer enabled, which also makes a second
    ``fig9_config`` call (inside :func:`run`) a no-op.
    """
    if explicit is None:
        if config.physical_enabled:
            return config
        explicit = ()
    pinned = set(explicit)
    overrides: Dict[str, object] = {"physical_enabled": True}
    for key, value in PHYSICAL_DEFAULTS.items():
        name = f"physical_{key}"
        if name not in pinned:
            overrides[name] = value
    return config.with_overrides(**overrides)


def build_study(
    config: ExperimentConfig, budgets: Sequence[float], name: str = "fig9"
) -> "api.Study":
    """The declarative form of the Fig. 9 sweep (one budget axis, physical on)."""
    return (
        api.Study(name)
        .base(api.Scenario.from_config(fig9_config(config), name=name))
        .over("budget.total_budget", [float(b) for b in budgets], label="C")
    )


def run(
    config: Optional[ExperimentConfig] = None,
    budgets: Optional[Sequence[float]] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    workers: int = 1,
    store: Union[None, str, "api.ResultStore"] = None,
) -> Figure9Result:
    """Run the fidelity-constrained budget sweep and collect the series."""
    config = (config or ExperimentConfig.paper()).with_run_overrides(trials, seed)
    config = fig9_config(config)
    budgets = list(budgets) if budgets is not None else sweep_budgets_for(config)

    result = build_study(config, budgets).run(workers=workers, store=store)
    return Figure9Result(
        config=config,
        budgets=[float(b) for b in budgets],
        delivered_fidelity=result.series("mean_delivered_fidelity"),
        fidelity_throughput=result.series("fidelity_served_rate"),
        delivered_rate=result.series("delivered_success_rate"),
        comparisons=result.to_comparisons(),
        study=result,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run(ExperimentConfig.small(), budgets=None, trials=1)
    print(result.format_tables())


if __name__ == "__main__":  # pragma: no cover
    main()
