"""Objective functions of the user-centric entanglement-routing problem.

These are the analytical quantities of Section III of the paper:

* ``P_e(n_e)`` — per-edge success probability with ``n_e`` channels (Eq. 1),
  provided by :mod:`repro.network.channels`.
* ``P(r, N(r)) = Π_e P_e(n_e(r))`` — EC success probability of a route under
  an allocation (Eq. 2).
* ``u(r_t, N_t) = Σ_ϕ log P(r_t(ϕ), N_t(r_t(ϕ)))`` — the proportional-fair
  slot utility (the inner sum of Eq. 3).
* the drift-plus-penalty objective of P2:
  ``V · u(r_t, N_t) − q_t · c_t``.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from repro.network.graph import EdgeKey, QDNGraph
from repro.network.routes import Route
from repro.utils.validation import check_non_negative


def route_success_probability(
    graph: QDNGraph, route: Route, allocation: Mapping[EdgeKey, float]
) -> float:
    """``P(r, N(r))``: product of per-edge success probabilities (paper Eq. 2).

    ``allocation`` maps each edge of the route to its channel count; edges
    missing from the mapping are treated as having zero channels (success
    probability zero).
    """
    probability = 1.0
    for key in route.edges:
        channels = float(allocation.get(key, 0.0))
        probability *= graph.link_success(key, channels)
    return probability


def route_log_success(
    graph: QDNGraph, route: Route, allocation: Mapping[EdgeKey, float]
) -> float:
    """``log P(r, N(r))`` computed as a sum of per-edge log terms."""
    total = 0.0
    for key in route.edges:
        channels = float(allocation.get(key, 0.0))
        probability = graph.link_success(key, channels)
        if probability <= 0.0:
            return float("-inf")
        total += math.log(probability)
    return total


def pair_success_probability(
    graph: QDNGraph,
    route: Optional[Route],
    allocation: Optional[Mapping[EdgeKey, float]] = None,
) -> float:
    """EC success probability of one SD pair; 0 when the pair is unserved."""
    if route is None:
        return 0.0
    return route_success_probability(graph, route, allocation or {})

def slot_utility(
    graph: QDNGraph,
    routes: Sequence[Route],
    allocations: Sequence[Mapping[EdgeKey, float]],
) -> float:
    """``u(r, N) = Σ_ϕ log P(r(ϕ), N(r(ϕ)))`` over the served SD pairs."""
    if len(routes) != len(allocations):
        raise ValueError("routes and allocations must have the same length")
    total = 0.0
    for route, allocation in zip(routes, allocations):
        total += route_log_success(graph, route, allocation)
    return total


def slot_cost(allocations: Sequence[Mapping[EdgeKey, float]]) -> float:
    """``c_t = Σ_ϕ Σ_e n_e``: the total qubit/channel cost of the slot."""
    return float(sum(sum(allocation.values()) for allocation in allocations))


def drift_plus_penalty_objective(
    utility: float, cost: float, utility_weight: float, queue_length: float
) -> float:
    """The per-slot P2 objective ``V · u − q_t · c_t``.

    ``utility_weight`` is the Lyapunov parameter ``V`` and ``queue_length``
    the current virtual-queue value ``q_t``.
    """
    check_non_negative(utility_weight, "utility_weight")
    check_non_negative(queue_length, "queue_length")
    return utility_weight * utility - queue_length * cost


def proportional_fairness_utility(success_probabilities: Sequence[float]) -> float:
    """Proportional-fair utility ``Σ log p`` of a set of success probabilities.

    Returns ``-inf`` if any probability is zero, mirroring the paper's
    logarithmic objective (Eq. 3) which strongly penalises starving any SD
    pair.
    """
    total = 0.0
    for probability in success_probabilities:
        if probability < 0 or probability > 1:
            raise ValueError(f"invalid probability {probability}")
        if probability == 0:
            return float("-inf")
        total += math.log(probability)
    return total
