"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one figure of the paper's evaluation section at
a reduced scale (smaller network, shorter horizon, fewer trials and sweep
points) so the whole suite runs in minutes on a laptop.  The *shape* of the
results — which policy wins, how the curves move with the swept parameter —
is asserted inside the benchmarks; reproducing the paper-scale numbers is a
matter of swapping in ``ExperimentConfig.paper()`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


def bench_config() -> ExperimentConfig:
    """The reduced-scale configuration used by the figure benchmarks."""
    return ExperimentConfig(
        num_nodes=10,
        horizon=20,
        total_budget=500.0,      # keeps C/T = 25, the paper's per-slot share
        trials=1,
        max_pairs=4,
        gibbs_iterations=20,
        num_candidate_routes=3,
        trade_off_v=2500.0,
        initial_queue=10.0,
        gamma=500.0,
        base_seed=2024,
    )


def sweep_config() -> ExperimentConfig:
    """An even smaller configuration for the parameter-sweep benchmarks."""
    return bench_config().with_overrides(horizon=12, num_nodes=9)


@pytest.fixture(scope="session")
def figure_config() -> ExperimentConfig:
    """Session-scoped benchmark configuration (Figs. 3 and 4)."""
    return bench_config()


@pytest.fixture(scope="session")
def parameter_sweep_config() -> ExperimentConfig:
    """Session-scoped configuration for the sweep benchmarks (Figs. 5-8)."""
    return sweep_config()
