"""The paper's theoretical performance guarantees.

* Proposition 2: the relax-and-round allocation is Δ-optimal with
  ``Δ = V · F · L · log(2 − p_min)``.
* Theorem 1: the time-averaged budget violation is bounded by
  ``sqrt(q0²/T² + 2D/T) − q0/T`` with ``D = Δ + B − V·F·L·log(p_min)``.
* Theorem 2: the achieved time-averaged objective is within
  ``(Δ + B)/V + q0²/(2VT)`` of the offline optimum.

These functions are used by the test suite (to check the simulated
behaviour against the bounds) and by the experiment reports (to print the
bound next to the measured value, as a sanity check of the reproduction).
"""

from __future__ import annotations

import math

from repro.utils.validation import check_non_negative, check_positive, check_probability


def delta_optimality_gap(
    trade_off_v: float, max_pairs: int, max_route_length: int, min_slot_success: float
) -> float:
    """Proposition 2: ``Δ = V · F · L · log(2 − p_min)``."""
    check_positive(trade_off_v, "trade_off_v")
    check_positive(max_pairs, "max_pairs")
    check_positive(max_route_length, "max_route_length")
    check_probability(min_slot_success, "min_slot_success", allow_zero=False)
    return trade_off_v * max_pairs * max_route_length * math.log(2.0 - min_slot_success)


def drift_constant_bound(max_slot_cost: float, per_slot_budget: float) -> float:
    """The constant ``B`` of Eq. (17): ``B >= (c_t − C/T)² / 2`` for every slot.

    ``B`` exists because the per-slot cost is bounded by the total capacity;
    the worst case is either spending the full capacity or spending nothing.
    """
    check_non_negative(max_slot_cost, "max_slot_cost")
    check_non_negative(per_slot_budget, "per_slot_budget")
    worst = max(abs(max_slot_cost - per_slot_budget), per_slot_budget)
    return 0.5 * worst**2


def theorem1_violation_bound(
    horizon: int,
    initial_queue: float,
    trade_off_v: float,
    max_pairs: int,
    max_route_length: int,
    min_slot_success: float,
    drift_constant: float,
    delta: float = None,
) -> float:
    """Theorem 1: bound on the time-averaged budget violation ``(1/T)Σc_t − C/T``.

    ``delta`` defaults to the Proposition-2 value computed from the same
    parameters.
    """
    check_positive(horizon, "horizon")
    check_non_negative(initial_queue, "initial_queue")
    check_probability(min_slot_success, "min_slot_success", allow_zero=False)
    check_non_negative(drift_constant, "drift_constant")
    if delta is None:
        delta = delta_optimality_gap(
            trade_off_v, max_pairs, max_route_length, min_slot_success
        )
    d_constant = delta + drift_constant - trade_off_v * max_pairs * max_route_length * math.log(
        min_slot_success
    )
    if d_constant < 0:
        raise ValueError("the drift constant D must be positive; check the inputs")
    return (
        math.sqrt((initial_queue**2) / (horizon**2) + 2.0 * d_constant / horizon)
        - initial_queue / horizon
    )


def theorem2_optimality_gap(
    horizon: int,
    initial_queue: float,
    trade_off_v: float,
    drift_constant: float,
    delta: float,
) -> float:
    """Theorem 2: the gap ``(Δ + B)/V + q0²/(2VT)`` to the offline optimum."""
    check_positive(horizon, "horizon")
    check_non_negative(initial_queue, "initial_queue")
    check_positive(trade_off_v, "trade_off_v")
    check_non_negative(drift_constant, "drift_constant")
    check_non_negative(delta, "delta")
    return (delta + drift_constant) / trade_off_v + (initial_queue**2) / (
        2.0 * trade_off_v * horizon
    )


def minimum_feasible_budget(max_pairs: int, max_route_length: int, horizon: int) -> float:
    """Assumption 1: the budget must satisfy ``C >= F · L · T``.

    This guarantees at least one channel per edge of one route per pair in
    every slot.
    """
    check_positive(max_pairs, "max_pairs")
    check_positive(max_route_length, "max_route_length")
    check_positive(horizon, "horizon")
    return float(max_pairs * max_route_length * horizon)
