"""Tests for repro.workload.budget."""

import pytest

from repro.workload.budget import (
    BudgetTracker,
    adaptive_budget_share,
    per_slot_budget_share,
)


class TestShareFunctions:
    def test_fixed_share_is_c_over_t(self):
        assert per_slot_budget_share(5000.0, 200) == pytest.approx(25.0)

    def test_fixed_share_invalid_horizon(self):
        with pytest.raises(ValueError):
            per_slot_budget_share(100.0, 0)

    def test_adaptive_share_initial_slot_equals_fixed(self):
        assert adaptive_budget_share(5000.0, 0.0, 0, 200) == pytest.approx(25.0)

    def test_adaptive_share_redistributes_savings(self):
        # Spent nothing in the first 100 slots: remaining 5000 over 100 slots.
        assert adaptive_budget_share(5000.0, 0.0, 100, 200) == pytest.approx(50.0)

    def test_adaptive_share_shrinks_after_overspending(self):
        assert adaptive_budget_share(100.0, 90.0, 5, 10) == pytest.approx(2.0)

    def test_adaptive_share_never_negative(self):
        assert adaptive_budget_share(100.0, 150.0, 5, 10) == 0.0

    def test_adaptive_share_slot_bounds(self):
        with pytest.raises(ValueError):
            adaptive_budget_share(100.0, 0.0, 10, 10)


class TestBudgetTracker:
    def test_basic_accounting(self):
        tracker = BudgetTracker(total_budget=100.0, horizon=4)
        tracker.record(10)
        tracker.record(30)
        assert tracker.spent == 40
        assert tracker.remaining == 60
        assert tracker.slots_recorded == 2
        assert tracker.per_slot_costs == [10.0, 30.0]
        assert tracker.cumulative_costs() == [10.0, 40.0]
        assert tracker.average_per_slot_cost == 20.0

    def test_violation_and_utilisation(self):
        tracker = BudgetTracker(total_budget=50.0, horizon=2)
        tracker.record(30)
        tracker.record(40)
        assert tracker.violation() == pytest.approx(20.0)
        assert tracker.utilisation() == pytest.approx(70.0 / 50.0)

    def test_no_violation_when_under_budget(self):
        tracker = BudgetTracker(total_budget=50.0, horizon=2)
        tracker.record(10)
        assert tracker.violation() == 0.0

    def test_cannot_record_beyond_horizon(self):
        tracker = BudgetTracker(total_budget=10.0, horizon=1)
        tracker.record(1)
        with pytest.raises(RuntimeError):
            tracker.record(1)

    def test_negative_cost_rejected(self):
        tracker = BudgetTracker(total_budget=10.0, horizon=2)
        with pytest.raises(ValueError):
            tracker.record(-1)

    def test_reset(self):
        tracker = BudgetTracker(total_budget=10.0, horizon=2)
        tracker.record(5)
        tracker.reset()
        assert tracker.spent == 0.0
        assert tracker.slots_recorded == 0

    def test_fixed_and_adaptive_shares(self):
        tracker = BudgetTracker(total_budget=100.0, horizon=10)
        assert tracker.fixed_share() == pytest.approx(10.0)
        assert tracker.adaptive_share() == pytest.approx(10.0)
        tracker.record(0)
        # Nothing spent in slot 0: the next adaptive share grows.
        assert tracker.adaptive_share() == pytest.approx(100.0 / 9.0)

    def test_adaptive_share_zero_after_horizon(self):
        tracker = BudgetTracker(total_budget=10.0, horizon=1)
        tracker.record(3)
        assert tracker.adaptive_share() == 0.0

    def test_zero_budget_utilisation(self):
        tracker = BudgetTracker(total_budget=0.0, horizon=2)
        assert tracker.utilisation() == 0.0
        tracker.record(1)
        assert tracker.utilisation() == float("inf")
