"""Saving and loading experiment artefacts.

Reproduction runs can take a long time at paper scale, so the harness can
persist what it measured: per-run summaries, per-slot series and the
formatted figure tables.  Everything is stored as plain JSON / CSV so the
artefacts remain readable without this package.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ComparisonResult
from repro.simulation.results import SimulationResult, SlotRecord

PathLike = Union[str, Path]


# --------------------------------------------------------------------------- #
# Simulation results
# --------------------------------------------------------------------------- #
def result_to_dict(result: SimulationResult) -> Dict:
    """A JSON-serialisable representation of one policy run."""
    return {
        "policy_name": result.policy_name,
        "horizon": result.horizon,
        "total_budget": result.total_budget,
        "summary": result.summary(),
        "records": [
            {
                "t": record.t,
                "num_requests": record.num_requests,
                "num_served": record.num_served,
                "cost": record.cost,
                "utility": record.utility,
                "success_probabilities": list(record.success_probabilities),
                "realized_successes": [bool(v) for v in record.realized_successes],
                "queue_length": record.queue_length,
                "delivered_successes": [bool(v) for v in record.delivered_successes],
                "delivered_fidelities": list(record.delivered_fidelities),
                "fidelity_served": [bool(v) for v in record.fidelity_served],
                "slot_start_s": record.slot_start_s,
                "slot_end_s": record.slot_end_s,
            }
            for record in result.records
        ],
    }


def result_from_dict(payload: Mapping) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict` output."""
    records = tuple(
        SlotRecord(
            t=int(entry["t"]),
            num_requests=int(entry["num_requests"]),
            num_served=int(entry["num_served"]),
            cost=int(entry["cost"]),
            utility=float(entry["utility"]),
            success_probabilities=tuple(float(p) for p in entry["success_probabilities"]),
            realized_successes=tuple(bool(v) for v in entry.get("realized_successes", [])),
            queue_length=entry.get("queue_length"),
            delivered_successes=tuple(
                bool(v) for v in entry.get("delivered_successes", [])
            ),
            delivered_fidelities=tuple(
                float(v) for v in entry.get("delivered_fidelities", [])
            ),
            fidelity_served=tuple(bool(v) for v in entry.get("fidelity_served", [])),
            slot_start_s=entry.get("slot_start_s"),
            slot_end_s=entry.get("slot_end_s"),
        )
        for entry in payload["records"]
    )
    return SimulationResult(
        policy_name=str(payload["policy_name"]),
        horizon=int(payload["horizon"]),
        total_budget=float(payload["total_budget"]),
        records=records,
    )


def save_result(result: SimulationResult, path: PathLike) -> Path:
    """Write one policy run to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2, allow_nan=True))
    return path


def load_result(path: PathLike) -> SimulationResult:
    """Load a policy run previously written by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    return result_from_dict(payload)


# --------------------------------------------------------------------------- #
# Comparisons
# --------------------------------------------------------------------------- #
def comparison_to_dict(comparison: ComparisonResult) -> Dict:
    """A JSON-serialisable representation of a multi-trial comparison."""
    return {
        "config": dataclasses.asdict(comparison.config),
        "trials": [
            {name: result_to_dict(result) for name, result in trial.items()}
            for trial in comparison.trials
        ],
    }


def comparison_from_dict(payload: Mapping) -> ComparisonResult:
    """Rebuild a :class:`ComparisonResult` (the config is reconstructed too)."""
    config = ExperimentConfig(**payload["config"])
    comparison = ComparisonResult(config=config)
    for trial in payload["trials"]:
        comparison.trials.append(
            {name: result_from_dict(entry) for name, entry in trial.items()}
        )
    return comparison


def save_comparison(comparison: ComparisonResult, path: PathLike) -> Path:
    """Write a comparison run to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(comparison_to_dict(comparison), indent=2, allow_nan=True))
    return path


def load_comparison(path: PathLike) -> ComparisonResult:
    """Load a comparison previously written by :func:`save_comparison`."""
    return comparison_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------------------- #
# Series / tables
# --------------------------------------------------------------------------- #
def save_series_csv(
    path: PathLike,
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
) -> Path:
    """Write aligned series (one column per policy) to a CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = list(series.keys())
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + names)
        for index, x in enumerate(x_values):
            row: List = [x]
            for name in names:
                values = series[name]
                row.append(values[index] if index < len(values) else "")
            writer.writerow(row)
    return path


def load_series_csv(path: PathLike) -> Dict[str, List[float]]:
    """Load a CSV written by :func:`save_series_csv` (including the x column)."""
    path = Path(path)
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader)
        columns: Dict[str, List[float]] = {name: [] for name in header}
        for row in reader:
            for name, value in zip(header, row):
                if value != "":
                    columns[name].append(float(value))
    return columns


def save_text_report(path: PathLike, report: str) -> Path:
    """Write a formatted plain-text report (figure tables) to disk."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report if report.endswith("\n") else report + "\n")
    return path
