"""Quantum Data Network (QDN) model.

This subpackage provides the network substrate on which entanglement routing
operates:

* :mod:`repro.network.graph` — the QDN graph (nodes with qubit capacity,
  edges with quantum-channel capacity) and per-slot availability snapshots.
* :mod:`repro.network.channels` — channel physics: per-attempt success
  probability from fibre length, per-slot link success, multi-channel
  success.
* :mod:`repro.network.topology` — topology generators (the paper's Waxman
  graph plus grid / ring / star / line / complete topologies).
* :mod:`repro.network.routes` — candidate route computation (Dijkstra,
  Yen's k-shortest paths, hop-bounded enumeration).
* :mod:`repro.network.resources` — exogenous time-varying resource
  availability processes producing the paper's ``Q_t^v`` and ``W_t^e``.
"""

from repro.network.graph import (
    EdgeKey,
    QuantumEdge,
    QuantumNode,
    QDNGraph,
    ResourceSnapshot,
    edge_key,
)
from repro.network.channels import (
    ChannelModel,
    ConstantLossChannel,
    FiberLossChannel,
    multi_channel_success,
    per_slot_success,
)
from repro.network.routes import (
    Route,
    CandidateRouteSet,
    build_candidate_routes,
    k_shortest_routes,
    shortest_route,
)
from repro.network.resources import (
    ResourceProcess,
    StaticResources,
    UniformOccupancy,
    MarkovOccupancy,
)
from repro.network.io import graph_from_dict, graph_to_dict, load_graph, save_graph
from repro.network.store import TopologyStore, default_topology_store
from repro.network import topology

__all__ = [
    "EdgeKey",
    "QuantumEdge",
    "QuantumNode",
    "QDNGraph",
    "ResourceSnapshot",
    "edge_key",
    "ChannelModel",
    "ConstantLossChannel",
    "FiberLossChannel",
    "multi_channel_success",
    "per_slot_success",
    "Route",
    "CandidateRouteSet",
    "build_candidate_routes",
    "k_shortest_routes",
    "shortest_route",
    "ResourceProcess",
    "StaticResources",
    "UniformOccupancy",
    "MarkovOccupancy",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "topology",
]
