"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        check_type(3, int, "value")

    def test_accepts_tuple_of_types(self):
        check_type(3.5, (int, float), "value")

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="value"):
            check_type("x", int, "value")


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(0.1, "value")

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0, "value")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1, "value")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative(0, "value")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.001, "value")


class TestCheckProbability:
    def test_accepts_bounds(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        check_probability(0.5, "p")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_open_interval_flags(self):
        with pytest.raises(ValueError):
            check_probability(0.0, "p", allow_zero=False)
        with pytest.raises(ValueError):
            check_probability(1.0, "p", allow_one=False)


class TestCheckInRange:
    def test_accepts_inside(self):
        check_in_range(0.5, 0, 1, "value")

    def test_accepts_boundaries(self):
        check_in_range(0, 0, 1, "value")
        check_in_range(1, 0, 1, "value")

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.01, 0, 1, "value")


class TestCheckInteger:
    def test_accepts_int(self):
        check_integer(5, "value")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_integer(True, "value")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_integer(5.0, "value")
