"""Tests for the repro.api session layer: parallelism, events, records."""

import json

import pytest

from repro import api
from repro.experiments.runner import run_comparison
from repro.simulation.results import SlotRecord


def tiny_scenario(trials=2, horizon=5):
    return (
        api.Scenario.tiny("session-test")
        .with_workload(horizon=horizon)
        .with_trials(trials)
        .with_seed(11)
        .with_policies("oscar", "ma")
    )


def trials_payload(record):
    """The equality-sensitive part of a RunRecord as canonical JSON."""
    payload = record.to_dict()
    return json.dumps({
        "trials": payload["trials"],
        "provider_trials": payload["provider_trials"],
    }, sort_keys=True)


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        scenario = tiny_scenario(trials=3)
        serial = api.run_scenario(scenario, workers=1)
        parallel = api.run_scenario(scenario, workers=3)
        assert trials_payload(serial) == trials_payload(parallel)
        assert serial.meta["workers"] == 1
        assert parallel.meta["workers"] == 3

    def test_facade_matches_legacy_runner(self):
        scenario = tiny_scenario(trials=2)
        record = api.run_scenario(scenario)
        legacy = run_comparison(
            scenario.config,
            policy_factory=lambda cfg: [cfg.make_oscar(), cfg.make_myopic_adaptive()],
        )
        from repro.experiments.persistence import result_to_dict

        legacy_payload = json.dumps([
            {name: result_to_dict(result) for name, result in trial.items()}
            for trial in legacy.trials
        ], sort_keys=True)
        facade_payload = json.dumps(record.to_dict()["trials"], sort_keys=True)
        assert facade_payload == legacy_payload

    def test_multiuser_parallel_matches_serial(self):
        scenario = (
            api.Scenario.tiny("shared")
            .with_workload(horizon=4)
            .with_trials(2)
            .with_user("lab", policy="oscar", total_budget=120.0)
            .with_user("edge", policy="naive")
        )
        serial = api.run_scenario(scenario, workers=1)
        parallel = api.run_scenario(scenario, workers=2)
        assert trials_payload(serial) == trials_payload(parallel)
        assert serial.kind == "multiuser"
        assert len(serial.provider_trials) == 2


class TestObservers:
    def test_event_order_serial(self):
        log = api.EventLog()
        scenario = tiny_scenario(trials=2, horizon=3)
        api.run_scenario(scenario, observers=[log])

        kinds = [type(event).__name__ for event in log.events]
        assert kinds[0] == "RunStarted"
        assert kinds[-1] == "RunCompleted"
        # Exactly one TrialStarted/TrialCompleted pair per trial, in order.
        trial_starts = [e.trial for e in log.of_type(api.TrialStarted)]
        trial_ends = [e.trial for e in log.of_type(api.TrialCompleted)]
        assert trial_starts == [0, 1]
        assert trial_ends == [0, 1]
        # horizon slots per policy per trial, none replayed.
        slots = log.of_type(api.SlotCompleted)
        assert len(slots) == 2 * 2 * 3
        assert all(not event.replayed for event in slots)
        assert all(isinstance(event.record, SlotRecord) for event in slots)
        # Slot events of trial 0 all precede trial 1's.
        boundary = kinds.index("TrialCompleted")
        assert all(event.trial == 0 for event in slots[: boundary - 2])

    def test_event_order_parallel_replay(self):
        log = api.EventLog()
        scenario = tiny_scenario(trials=2, horizon=3)
        api.run_scenario(scenario, workers=2, observers=[log])

        slots = log.of_type(api.SlotCompleted)
        assert len(slots) == 2 * 2 * 3
        assert all(event.replayed for event in slots)
        trials_seen = [event.trial for event in slots]
        assert trials_seen == sorted(trials_seen)  # replayed in trial order

    def test_trial_completed_carries_summaries(self):
        log = api.EventLog()
        api.run_scenario(tiny_scenario(trials=1, horizon=3), observers=[log])
        (completed,) = log.of_type(api.TrialCompleted)
        assert set(completed.results) == {"OSCAR", "MA"}
        assert "average_success_rate" in completed.results["OSCAR"]

    def test_early_stop(self):
        class StopAfterFirstTrial(api.RunObserver):
            def on_trial_completed(self, event):
                raise api.EarlyStop()

        record = api.run_scenario(
            tiny_scenario(trials=3), observers=[StopAfterFirstTrial()]
        )
        assert record.meta["stopped_early"] is True
        assert record.num_trials == 1

    def test_live_metrics_observer(self):
        metrics = api.LiveMetricsObserver()
        api.run_scenario(tiny_scenario(trials=1, horizon=4), observers=[metrics])
        snapshot = metrics.snapshot()
        assert set(snapshot) == {"OSCAR", "MA"}
        assert snapshot["OSCAR"]["slots"] == 4
        assert 0.0 <= snapshot["OSCAR"]["running_success_rate"] <= 1.0

    def test_callback_observer(self):
        seen = []
        api.run_scenario(
            tiny_scenario(trials=1, horizon=2),
            observers=[api.CallbackObserver(seen.append)],
        )
        assert any(isinstance(event, api.RunStarted) for event in seen)

    def test_progress_observer_writes_stream(self):
        import io

        stream = io.StringIO()
        api.run_scenario(
            tiny_scenario(trials=1, horizon=2),
            observers=[api.ProgressObserver(stream=stream)],
        )
        output = stream.getvalue()
        assert "session-test" in output
        assert "trial 0 done" in output


class TestRunRecord:
    def test_round_trip_through_json_file(self, tmp_path):
        record = api.run_scenario(tiny_scenario(trials=2, horizon=3))
        path = record.save(tmp_path / "record.json")
        loaded = api.RunRecord.load(path)
        assert trials_payload(loaded) == trials_payload(record)
        assert loaded.kind == record.kind
        assert loaded.lineup == record.lineup

    def test_summary_and_comparison_view(self):
        record = api.run_scenario(tiny_scenario(trials=2, horizon=3))
        summary = record.summary()
        assert set(summary) == {"OSCAR", "MA"}
        assert summary["OSCAR"]["average_success_rate"].count == 2
        comparison = record.to_comparison()
        assert comparison.policy_names == ["OSCAR", "MA"]
        assert len(comparison.mean_series("OSCAR", "cumulative_cost")) == 3
        assert "OSCAR" in record.format_summary()

    def test_compare_helper(self):
        record = api.compare(
            tiny_scenario().config, policies=("oscar",), trials=1, seed=3
        )
        assert record.lineup == ["OSCAR"]
        assert record.num_trials == 1
        assert record.scenario_config().base_seed == 3
