"""The compiled slot kernel: horizon-amortised evaluation of route combinations.

The OSCAR loop nests three solvers: Gibbs route selection (Algorithm 3)
around qubit allocation (Algorithm 2) around a dual-decomposition
relaxation.  The legacy object path rebuilds an
:class:`~repro.solvers.allocation_problem.AllocationProblem` from dataclasses
and cold-solves a fixed number of subgradient iterations for *every* route
combination the selector visits — even though a Gibbs proposal changes a
single request's route and barely moves the optimal dual multipliers.

The kernel is split into two layers:

* :class:`CompiledStructure` — everything that depends only on the *static*
  topology: a global constraint-row registry over every node and edge of the
  graph, per-route blocks of single-channel success probabilities ``p_e``
  and their ``-log1p(-p_e)`` tables, and per-route-combination constraint
  matrices (membership rows, first-touch constraint ordering, variable
  bounds skeleton).  All of it is compiled lazily, memoised, and — crucially
  — reusable across the drop-retry loop, consecutive slots and whole
  horizons, because only right-hand sides change slot to slot.
* :class:`SlotKernel` — a thin per-slot *binding* of a structure: it rewrites
  the capacity/occupancy right-hand sides from the slot's resource snapshot,
  the cost weight ``q_t`` and the budget cap, and evaluates route
  combinations incrementally on top of the compiled arrays.

:class:`KernelCache` owns the structures (keyed by a content signature over
the graph's nodes, edges and link physics) and the cross-slot warm-start
state, so route selectors *re-bind* instead of recompiling: the subgradient
ascent of each solve is seeded with the best dual multipliers seen so far —
they are indexed by physical node/edge, so they remain meaningful across
combinations *and across slots* — and stops early once the duality gap falls
below ``dual_tolerance``.  The legacy iteration count is kept as a hard cap,
and ``dual_tolerance=0`` still replays the legacy schedule exactly (warm
starts are disabled in that mode).

The repaired primal point is polished with the shared
:func:`~repro.solvers.relaxed.cyclic_coordinate_polish` and rounded with the
shared :func:`~repro.solvers.rounding.surplus_pass`, the same routines the
legacy path uses, so both paths land on the same integer allocation.

The kernel exposes the same evaluator interface as the legacy
``_CombinationEvaluator`` (``selection_for`` / ``outcome_for`` /
``objective`` / ``evaluations``) so the route selectors can swap it in
transparently; the legacy object path remains available as the
cross-checking reference (``use_kernel=False`` / ``ExperimentConfig``'s
``use_kernel`` toggle).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.guard import hooks as guard_hooks
from repro.network.channels import log_multi_channel_success
from repro.solvers.allocation_problem import ContinuousSolution, IntegerSolution
from repro.solvers.relaxed import (
    DualDecompositionSolver,
    _closed_form_best_response,
    cyclic_coordinate_polish,
)
from repro.solvers.rounding import surplus_pass
from repro.utils.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.allocation import AllocationOutcome
    from repro.core.problem import AllocationKey, SlotContext
    from repro.network.graph import QDNGraph
    from repro.network.routes import Route
    from repro.workload.requests import SDPair

#: Default relative duality-gap tolerance of the warm-started early stop.
#: Calibrated empirically: polish + rounding absorb relative gaps up to
#: ~1e-3 without changing a single integer allocation (see the kernel test
#: suite), so 1e-4 keeps an order of magnitude of safety margin.
DEFAULT_DUAL_TOLERANCE = 1e-4

#: The keys every per-binding ``SlotKernel.stats`` dictionary carries (and
#: that :class:`KernelCache` aggregates across a horizon).
STAT_KEYS = (
    "solves",
    "cache_hits",
    "combo_hits",
    "memo_hits",
    "direct_solves",
    "pruned",
    "dual_iterations",
    "early_stops",
)

#: Bound on the number of cached combination structures per topology.
MAX_COMBOS = 8192

#: Bound on the number of memoised solves per topology.
MAX_SOLVE_MEMO = 32768

_OUTCOME_CLS = None


def _outcome_class():
    """Lazily resolve :class:`AllocationOutcome` (breaks the core↔solvers cycle)."""
    global _OUTCOME_CLS
    if _OUTCOME_CLS is None:
        from repro.core.allocation import AllocationOutcome

        _OUTCOME_CLS = AllocationOutcome
    return _OUTCOME_CLS


@dataclass(frozen=True)
class KernelOptions:
    """Solver knobs of the compiled slot kernel.

    ``dual_iterations`` is the hard cap on subgradient steps (the legacy
    solver's fixed budget); ``dual_tolerance`` is the relative duality-gap
    threshold of the early stop (``0`` disables early stopping, which makes
    the kernel replay the legacy iteration schedule exactly);
    ``warm_start`` seeds each solve with the multipliers of the previous
    combination; the remaining fields mirror
    :class:`~repro.solvers.relaxed.DualDecompositionSolver`.
    """

    dual_iterations: int = 150
    dual_tolerance: float = DEFAULT_DUAL_TOLERANCE
    warm_start: bool = True
    polish_rounds: int = 2
    primal_check_every: int = 25
    feasibility_tolerance: float = 1e-6
    initial_step: Optional[float] = None
    step_offset_cap: int = 600
    #: Horizon-compiled mode (set when bound through a :class:`KernelCache`):
    #: enables the exact KKT shortcuts — return the unconstrained best
    #: response outright when it is feasible (it is then the optimum of the
    #: concave relaxation), and solve budget-only-binding instances by
    #: bisecting the single active multiplier — instead of always running
    #: the subgradient loop.  Off for standalone kernels so that
    #: ``kernel_cache=False`` reproduces the recompile-per-slot solve path.
    horizon_mode: bool = False

    def __post_init__(self) -> None:
        if self.dual_iterations < 1:
            raise ValueError("dual_iterations must be at least 1")
        if self.dual_tolerance < 0:
            raise ValueError("dual_tolerance must be non-negative")
        if self.primal_check_every < 1:
            raise ValueError("primal_check_every must be at least 1")
        if self.polish_rounds < 0:
            raise ValueError("polish_rounds must be non-negative")


def kernel_options_for(
    solver: object,
    dual_tolerance: Optional[float] = None,
    warm_start: bool = True,
    horizon_mode: bool = False,
) -> Optional[KernelOptions]:
    """Derive :class:`KernelOptions` from a relaxed solver, if compatible.

    Only a plain :class:`DualDecompositionSolver` maps onto the kernel (a
    subclass may have overridden ``solve``); anything else — e.g. the SLSQP
    reference solver — returns ``None`` and callers fall back to the legacy
    object path.
    """
    if type(solver) is not DualDecompositionSolver:
        return None
    tolerance = (
        DEFAULT_DUAL_TOLERANCE if dual_tolerance is None else float(dual_tolerance)
    )
    return KernelOptions(
        dual_iterations=solver.iterations,
        dual_tolerance=tolerance,
        # ``dual_tolerance=0`` promises an exact replay of the legacy
        # iteration schedule, which a warm multiplier seed would break.
        warm_start=warm_start and tolerance > 0.0,
        polish_rounds=solver.polish_rounds,
        primal_check_every=solver.primal_check_every,
        feasibility_tolerance=solver.tolerance,
        initial_step=solver.initial_step,
        # Replay mode promises the legacy schedule; the KKT shortcuts only
        # run in adaptive, horizon-compiled solves.
        horizon_mode=horizon_mode and tolerance > 0.0,
    )


def structure_signature(graph: "QDNGraph") -> Tuple:
    """Content signature of everything a :class:`CompiledStructure` compiles.

    Covers the node set (row registry), the edge set with its per-attempt
    link physics (the ``p_e`` tables) and the per-slot attempt budget.  Two
    graphs with equal signatures compile to interchangeable structures; any
    change — a removed edge, retuned loss, a different node ordering —
    yields a new signature and therefore a fresh structure.
    """
    return (
        tuple(graph.nodes),
        tuple((key, graph.attempt_success(key)) for key in graph.edges),
        graph.attempts_per_slot,
    )


class _RouteBlock:
    """Compiled arrays of one candidate route (request-independent)."""

    __slots__ = ("index", "edge_keys", "p", "p_list", "row_triples", "hops")

    def __init__(
        self,
        index: int,
        edge_keys: List[Tuple[object, object]],
        p: np.ndarray,
        row_triples: np.ndarray,
    ) -> None:
        self.index = index
        self.edge_keys = edge_keys
        self.p = p
        self.p_list = [float(v) for v in p]
        self.row_triples = row_triples
        self.hops = len(edge_keys)


class _ComboStructure:
    """Static arrays of one route combination (request- and slot-independent).

    Everything here depends only on which routes were combined (and whether a
    budget row is active) — membership matrices, the legacy first-touch
    constraint ordering, probability tables — so it is compiled once per
    distinct route multiset and reused across slots and request sets.
    """

    __slots__ = (
        "n",
        "p",
        "p_list",
        "a",
        "neg_log1p",
        "fast_path",
        "order_array",
        "m",
        "rows_local",
        "membership",
        "membership_t",
        "var_rows",
        "row_members",
        "lower",
        "lower_loads",
        "block_hops",
    )

    def __init__(
        self, blocks: Sequence[_RouteBlock], budget_row: Optional[int]
    ) -> None:
        n = sum(block.hops for block in blocks)
        self.n = n
        self.block_hops = [block.hops for block in blocks]
        self.p = np.concatenate([block.p for block in blocks])
        self.p_list = [v for block in blocks for v in block.p_list]
        triples = np.vstack([block.row_triples for block in blocks])

        # Active constraints, ordered exactly as the legacy problem builder
        # orders them (nodes by first touch, then edges, then the budget) so
        # the repair pass visits them in the same sequence.
        seen_nodes: Dict[int, None] = {}
        seen_edges: Dict[int, None] = {}
        for u_row, v_row, e_row in triples.tolist():
            if u_row not in seen_nodes:
                seen_nodes[u_row] = None
            if v_row not in seen_nodes:
                seen_nodes[v_row] = None
            if e_row not in seen_edges:
                seen_edges[e_row] = None
        order: List[int] = list(seen_nodes) + list(seen_edges)
        if budget_row is not None:
            order.append(budget_row)
        self.order_array = np.asarray(order, dtype=np.intp)
        m = len(order)
        self.m = m

        local: Dict[int, int] = {row: i for i, row in enumerate(order)}
        rows_local = np.asarray(
            [local[int(row)] for row in triples.ravel()], dtype=np.intp
        ).reshape(triples.shape)
        if budget_row is not None:
            rows_local = np.hstack(
                [rows_local, np.full((n, 1), m - 1, dtype=np.intp)]
            )
        self.rows_local = rows_local
        width = rows_local.shape[1]

        membership = np.zeros((m, n), dtype=float)
        membership[rows_local.ravel(), np.repeat(np.arange(n), width)] = 1.0
        self.membership = membership
        self.membership_t = membership.T.copy()
        self.var_rows = [rows_local[i] for i in range(n)]
        self.row_members = [np.nonzero(membership[r])[0] for r in range(m)]

        self.lower = np.ones(n, dtype=float)
        self.lower_loads = membership.sum(axis=1)

        p = self.p
        degenerate = (p <= 0.0) | (p >= 1.0)
        self.fast_path = not bool(np.any(degenerate))
        self.a = -np.log1p(-np.clip(p, 0.0, 1.0 - 1e-15))
        self.neg_log1p = np.log1p(-p)


class CompiledStructure:
    """Static compiled state of one graph: row registry, route blocks, combos.

    The row registry covers *every* node and edge of the graph (nodes first,
    then edges, then one reserved budget row), so warm-start dual multipliers
    are indexed by physical resource and stay meaningful across route
    combinations, request sets and slots.  Route blocks and combination
    structures are compiled lazily and memoised.
    """

    def __init__(self, graph: "QDNGraph") -> None:
        nodes = graph.nodes
        edges = graph.edges
        self.node_row: Dict[object, int] = {node: i for i, node in enumerate(nodes)}
        self.edge_row: Dict[Tuple[object, object], int] = {
            key: len(nodes) + j for j, key in enumerate(edges)
        }
        self.budget_row: int = len(nodes) + len(edges)
        self.num_rows: int = self.budget_row + 1
        self._nodes = list(nodes)
        self._edges = list(edges)
        self.edge_success: Dict[Tuple[object, object], float] = {
            key: float(graph.slot_success(key)) for key in edges
        }

        self._route_blocks: Dict[object, _RouteBlock] = {}
        self._combos: "OrderedDict[Tuple, _ComboStructure]" = OrderedDict()

        # Warm-start state carried across combinations *and* slots: one
        # global multiplier vector over the full row registry, plus per-combo
        # best multipliers (a revisited combination re-seeds from its own
        # near-optimal duals rather than the last combination's).
        self.warm_mult = np.zeros(self.num_rows, dtype=float)
        self.warm_ready = False
        self.step_offset = 0
        self.combo_warm: Dict[Tuple, Tuple[np.ndarray, int]] = {}

        # Memoised solves: a solve is a deterministic function of the
        # combination, the active-row capacities and the (V, q, cap)
        # weights, so identical inputs — e.g. the myopic-fixed policy under
        # static resources, or a repeated queue price — reuse the previous
        # (relaxed, rounded) solution pair outright.
        self.solve_memo: "OrderedDict[Tuple, Tuple]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Lazy compilation
    # ------------------------------------------------------------------ #
    def block_for(self, route: "Route") -> _RouteBlock:
        """The compiled block of one candidate route (memoised)."""
        block = self._route_blocks.get(route)
        if block is None:
            successes: List[float] = []
            triples: List[Tuple[int, int, int]] = []
            edge_keys: List[Tuple[object, object]] = []
            for key in route.edges:
                edge_keys.append(key)
                successes.append(self.edge_success[key])
                triples.append(
                    (self.node_row[key[0]], self.node_row[key[1]], self.edge_row[key])
                )
            block = _RouteBlock(
                index=len(self._route_blocks),
                edge_keys=edge_keys,
                p=np.asarray(successes, dtype=float),
                row_triples=np.asarray(triples, dtype=np.intp).reshape(-1, 3),
            )
            self._route_blocks[route] = block
        return block

    def combo_for(
        self, blocks: Sequence[_RouteBlock], use_budget: bool
    ) -> Tuple[Tuple, _ComboStructure, bool]:
        """The combination structure of a route multiset; (key, combo, was_cached)."""
        key = (tuple(block.index for block in blocks), use_budget)
        combo = self._combos.get(key)
        if combo is not None:
            self._combos.move_to_end(key)
            return key, combo, True
        combo = _ComboStructure(blocks, self.budget_row if use_budget else None)
        self._combos[key] = combo
        while len(self._combos) > MAX_COMBOS:
            evicted, _ = self._combos.popitem(last=False)
            self.combo_warm.pop(evicted, None)
        return key, combo, False

    # ------------------------------------------------------------------ #
    # Per-slot right-hand sides
    # ------------------------------------------------------------------ #
    def bind_capacities(
        self, snapshot, budget_cap: Optional[float]
    ) -> np.ndarray:
        """The slot's capacity vector over the full row registry."""
        capacities = np.empty(self.num_rows, dtype=float)
        for node, row in self.node_row.items():
            capacities[row] = float(snapshot.available_qubits(node))
        for key, row in self.edge_row.items():
            capacities[row] = float(snapshot.available_channels(key))
        capacities[self.budget_row] = (
            math.inf if budget_cap is None else float(budget_cap)
        )
        return capacities

    def reset_warm_state(self) -> None:
        """Forget the carried dual multipliers (fresh-run semantics)."""
        self.warm_mult[:] = 0.0
        self.warm_ready = False
        self.step_offset = 0
        self.combo_warm.clear()
        self.solve_memo.clear()


class SlotKernel:
    """Per-slot binding of a :class:`CompiledStructure` (see module docstring).

    Exposes the evaluator interface of the legacy ``_CombinationEvaluator``;
    every distinct route combination is solved at most once per binding and
    cached, and consecutive solves share warm-started dual multipliers (which
    persist on the structure across bindings, i.e. across slots).
    """

    def __init__(
        self,
        context: "SlotContext",
        requests: Sequence["SDPair"],
        candidate_routes: Sequence[Sequence["Route"]],
        utility_weight: float = 1.0,
        cost_weight: float = 0.0,
        budget_cap: Optional[float] = None,
        options: Optional[KernelOptions] = None,
        structure: Optional[CompiledStructure] = None,
    ) -> None:
        check_non_negative(utility_weight, "utility_weight")
        check_non_negative(cost_weight, "cost_weight")
        if budget_cap is not None:
            check_non_negative(budget_cap, "budget_cap")
        self._requests = list(requests)
        self._candidates = [list(routes) for routes in candidate_routes]
        self._utility_weight = float(utility_weight)
        self._cost_weight = float(cost_weight)
        self._budget_cap = None if budget_cap is None else float(budget_cap)
        self._options = options if options is not None else KernelOptions()

        self._structure = (
            structure if structure is not None else CompiledStructure(context.graph)
        )
        self._blocks: List[List[_RouteBlock]] = [
            [self._structure.block_for(route) for route in routes]
            for routes in self._candidates
        ]
        self._capacities = self._structure.bind_capacities(
            context.snapshot, self._budget_cap
        )
        self._use_budget = self._budget_cap is not None

        self._cache: Dict[Tuple[int, ...], "AllocationOutcome"] = {}
        # Combination structures already looked up by the batch pre-pass on
        # behalf of a scalar-routed solve: maps combo key to whether that
        # first lookup was a cache hit, so _solve does not re-count it.
        self._combo_precounted: Dict[Tuple, bool] = {}
        self.evaluations = 0
        self.stats: Dict[str, int] = {key: 0 for key in STAT_KEYS}

    # ------------------------------------------------------------------ #
    # Evaluator interface (drop-in for the legacy _CombinationEvaluator)
    # ------------------------------------------------------------------ #
    def selection_for(self, assignment: Tuple[int, ...]) -> Dict["SDPair", "Route"]:
        """The route mapping corresponding to an index assignment."""
        return {
            request: self._candidates[i][choice]
            for i, (request, choice) in enumerate(zip(self._requests, assignment))
        }

    def outcome_for(self, assignment: Tuple[int, ...]) -> "AllocationOutcome":
        """Allocate qubits for the combination, with caching."""
        key = tuple(int(choice) for choice in assignment)
        outcome = self._cache.get(key)
        if outcome is None:
            outcome = self._solve(key)
            self._cache[key] = outcome
            self.evaluations += 1
        else:
            self.stats["cache_hits"] += 1
        return outcome

    def objective(self, assignment: Tuple[int, ...]) -> float:
        """P2 objective of the combination; ``-inf`` when infeasible."""
        outcome = self.outcome_for(assignment)
        if not outcome.feasible:
            return float("-inf")
        return outcome.objective

    # ------------------------------------------------------------------ #
    # Batched evaluation (horizon mode)
    # ------------------------------------------------------------------ #
    def evaluate_all(self, assignments) -> None:
        """Solve every given route combination, batching the dual ascents.

        The exhaustive selector enumerates every combination of a slot; each
        one is a tiny problem (tens of variables), so solving them one by one
        pays NumPy's fixed per-call overhead hundreds of times per slot.
        This method runs all still-unsolved combinations through one
        lock-step, padded, batched projected-subgradient ascent — the same
        warm-started, duality-gap-certified algorithm as :meth:`_solve`, with
        the in-loop repair/polish replaced by their vectorised, feasibility-
        guaranteed counterparts — and populates the outcome cache so the
        subsequent argmax walk is pure lookups.

        Only active in horizon-compiled adaptive mode; otherwise a no-op (the
        sequential path evaluates on demand).
        """
        self._evaluate_batch(assignments, prune=False)

    def best_of(
        self, assignments
    ) -> Optional[Tuple[Tuple[int, ...], float]]:
        """The best combination of an enumeration, with dual-bound pruning.

        Like :meth:`evaluate_all` followed by an argmax walk, but most
        combinations never reach the integer stage: the certified dual value
        of a combination is a valid upper bound on its rounded objective
        (rounded ≤ relaxed optimum ≤ dual), so combinations whose bound
        falls below the best rounded objective found so far are pruned after
        the batched relaxation.  Ties at the bound are never pruned, and the
        final argmax prefers earlier enumeration order exactly like the
        sequential walk, so the selected combination is unchanged.

        Returns ``None`` outside horizon-compiled adaptive mode (callers
        fall back to the plain evaluate-everything walk).
        """
        options = self._options
        if not (options.horizon_mode and options.dual_tolerance > 0.0):
            return None
        order = [tuple(int(choice) for choice in a) for a in assignments]
        self._evaluate_batch(order, prune=True)
        best_key = order[0] if order else ()
        best_objective = float("-inf")
        for key in order:
            outcome = self._cache.get(key)
            if outcome is None:
                continue  # pruned: its dual bound is below the running best
            objective = outcome.objective if outcome.feasible else float("-inf")
            if objective > best_objective:
                best_objective = objective
                best_key = key
        if best_key not in self._cache:
            # Every combination was pruned-or-missing (cannot happen when at
            # least one was finalised, but stay defensive): solve the first.
            self.outcome_for(best_key)
        return best_key, best_objective

    def _evaluate_batch(self, assignments, prune: bool) -> None:
        options = self._options
        if not (options.horizon_mode and options.dual_tolerance > 0.0):
            return
        structure = self._structure
        pending: List[Tuple[int, ...]] = []
        seen = set()
        for assignment in assignments:
            key = tuple(int(choice) for choice in assignment)
            if key in seen or key in self._cache:
                continue
            seen.add(key)
            pending.append(key)
        if not pending:
            return

        # Pre-pass: compile combos, bind capacities, and route the cases the
        # batch cannot represent (trivial, memoised, degenerate-probability,
        # bounds-infeasible) through the scalar path.
        batch: List[Tuple] = []
        for key in pending:
            blocks = [self._blocks[i][choice] for i, choice in enumerate(key)]
            if not blocks or all(block.hops == 0 for block in blocks):
                self.outcome_for(key)
                continue
            combo_key, combo, combo_cached = structure.combo_for(
                blocks, self._use_budget
            )
            capacities = self._capacities[combo.order_array]
            memo_key = (
                combo_key, self._utility_weight, self._cost_weight,
                self._budget_cap, capacities.tobytes(),
            )
            raw_upper = (
                (capacities - combo.lower_loads + 1.0)[combo.rows_local].min(axis=1)
            )
            if (
                memo_key in structure.solve_memo
                or not combo.fast_path
                or bool(np.any(raw_upper < 1.0))
                or bool(np.any(combo.lower_loads > capacities + 1e-6))
            ):
                self._combo_precounted[combo_key] = combo_cached
                self.outcome_for(key)
                continue
            if combo_cached:
                self.stats["combo_hits"] += 1
            keys = [
                (request, edge)
                for request, block in zip(self._requests, blocks)
                for edge in block.edge_keys
            ]
            batch.append(
                (key, combo_key, combo, memo_key, keys, capacities,
                 np.maximum(raw_upper, 1.0))
            )
        if not batch:
            return
        if len(batch) == 1:
            # Fall back to the scalar path; its combo lookup was already
            # counted above, so mark it pre-counted as a non-hit.
            key, combo_key = batch[0][0], batch[0][1]
            self._combo_precounted[combo_key] = False
            self.outcome_for(key)
            return

        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            self._solve_batch(batch, prune=prune)

    def _solve_batch(self, batch: List[Tuple], prune: bool = False) -> None:
        """Lock-step batched dual ascent over pre-validated combinations."""
        options = self._options
        structure = self._structure
        V = self._utility_weight
        q = self._cost_weight
        tol = options.dual_tolerance
        C = len(batch)
        combos = [entry[2] for entry in batch]
        N = max(combo.n for combo in combos)
        M = max(combo.m for combo in combos)
        width = combos[0].rows_local.shape[1]
        BIG = 1e18

        # Padded batch arrays: padding variables are pinned to [1, 1] and
        # point at a per-combo dummy row (index M) with effectively infinite
        # capacity, so they influence neither objectives nor loads.
        mask = np.zeros((C, N), dtype=bool)
        p_b = np.full((C, N), 0.5)
        rows_b = np.full((C, N, width), M, dtype=np.intp)
        caps_b = np.full((C, M + 1), BIG)
        row_mask = np.zeros((C, M + 1), dtype=bool)
        upper_b = np.ones((C, N))
        for c, (key, combo_key, combo, memo_key, keys, capacities, upper) in enumerate(batch):
            n, m = combo.n, combo.m
            mask[c, :n] = True
            p_b[c, :n] = combo.p
            rows_b[c, :n, :] = combo.rows_local
            caps_b[c, :m] = capacities
            row_mask[c, :m] = True
            upper_b[c, :n] = upper
        lower_b = np.ones((C, N))
        a_b = -np.log1p(-p_b)
        va_b = V * a_b
        neg_b = np.log1p(-p_b)

        idx0 = np.arange(C)[:, None, None]
        flat_rows = (np.arange(C)[:, None, None] * (M + 1) + rows_b).reshape(-1)

        def batch_loads(x: np.ndarray) -> np.ndarray:
            return np.bincount(
                flat_rows, weights=np.repeat(x.reshape(-1), width),
                minlength=C * (M + 1),
            ).reshape(C, M + 1)

        lower_loads_b = batch_loads(lower_b)

        def batch_obj(x: np.ndarray) -> np.ndarray:
            log_terms = np.log(-np.expm1(x * neg_b))
            return V * np.where(mask, log_terms, 0.0).sum(-1) - q * np.where(
                mask, x, 0.0
            ).sum(-1)

        def batch_best_response(prices: np.ndarray) -> np.ndarray:
            x = np.log1p(va_b / np.maximum(prices, 1e-300)) / a_b
            x = np.where(prices <= 0.0, upper_b, x)
            np.clip(x, lower_b, upper_b, out=x)
            return x

        def batch_repair(x: np.ndarray) -> np.ndarray:
            """Feasible by construction: each variable's excess over its
            lower bound is scaled by the worst slack/overflow ratio of its
            rows, so no row can end above its capacity."""
            np.clip(x, lower_b, upper_b, out=x)
            loads = batch_loads(x)
            over = loads - lower_loads_b
            avail = caps_b - lower_loads_b
            s_row = np.where(
                loads > caps_b + 1e-12,
                avail / np.maximum(over, 1e-300),
                1.0,
            )
            np.clip(s_row, 0.0, 1.0, out=s_row)
            s_var = s_row[idx0, rows_b].min(-1)
            return lower_b + (x - lower_b) * s_var

        def batch_polish(x: np.ndarray) -> np.ndarray:
            """Vectorised water-fill towards the per-variable optimum (the
            batch counterpart of the sequential ``fast_polish``)."""
            loads = batch_loads(x)
            slack = caps_b - loads
            head = slack[idx0, rows_b].min(-1)
            raise_by = np.clip(x_unc - x, 0.0, np.maximum(head, 0.0))
            inc = batch_loads(raise_by)
            ratios = np.where(inc > 0.0, slack / inc, 1.0)
            scale = np.minimum(1.0, ratios[idx0, rows_b].min(-1))
            lower_by = np.clip(x - x_unc, 0.0, x - lower_b)
            return x + raise_by * np.maximum(scale, 0.0) - lower_by

        x_unc = batch_best_response(np.full((C, N), q))

        # Warm starts: a seen combination re-uses its own multipliers, new
        # ones project the global per-resource vector onto their rows.
        mult = np.zeros((C, M + 1))
        offset_b = np.zeros(C)
        warm_enabled = options.warm_start and tol > 0.0
        if warm_enabled:
            for c, entry in enumerate(batch):
                combo_key, combo = entry[1], entry[2]
                warm = structure.combo_warm.get(combo_key)
                if warm is not None:
                    mult[c, : combo.m] = warm[0]
                    offset_b[c] = warm[1]
                elif structure.warm_ready:
                    mult[c, : combo.m] = structure.warm_mult[combo.order_array]
                    offset_b[c] = structure.step_offset

        if options.initial_step is not None:
            step_scale = np.full(C, float(options.initial_step))
        else:
            step_scale = np.asarray(
                [
                    max(V, 1.0) / max(float(entry[5].max()), 1.0)
                    for entry in batch
                ]
            )
        step_cap = 5.0 * step_scale

        active = np.ones(C, dtype=bool)
        best_x = np.ones((C, N))
        best_obj = np.full(C, -np.inf)
        best_dual = np.full(C, np.inf)
        best_mult = np.zeros((C, M + 1))
        used = np.full(C, options.dual_iterations)
        max_iterations = options.dual_iterations

        for k in range(max_iterations):
            prices = q + mult[idx0, rows_b].sum(-1)
            x = batch_best_response(prices)
            loads = batch_loads(x)
            violation = np.where(row_mask, loads - caps_b, 0.0)
            dual = batch_obj(x) - (mult * violation).sum(-1)
            improved = active & (dual < best_dual)
            best_dual = np.where(improved, dual, best_dual)
            best_mult[improved] = mult[improved]
            candidate_for = active & (improved | (k == 0))
            if candidate_for.any():
                candidate = batch_polish(batch_repair(x.copy()))
                objective = batch_obj(candidate)
                better = candidate_for & (objective > best_obj)
                best_obj = np.where(better, objective, best_obj)
                best_x[better] = candidate[better]
            certified = active & np.isfinite(best_obj) & (
                best_dual - best_obj <= tol * np.maximum(1.0, np.abs(best_obj))
            )
            used[certified] = k + 1
            active &= ~certified
            if not active.any():
                break
            effective = np.where((mult > 0.0) | (violation > 0.0), violation, 0.0)
            norm2 = (effective * effective).sum(-1)
            step = (dual - best_obj) / np.maximum(norm2, 1e-12)
            fallback = step_scale / np.sqrt(offset_b + k + 1.0)
            step = np.where(
                (step > 0.0) & (step < step_cap),
                step,
                np.where(step >= step_cap, step_cap, fallback),
            )
            step = np.where(active & np.isfinite(step), step, 0.0)
            mult = np.maximum(0.0, mult + step[:, None] * violation)

        certified_count = int((used < max_iterations).sum())
        self.stats["early_stops"] += certified_count
        self.stats["dual_iterations"] += int(used.sum())
        self.stats["solves"] += C

        # Per-combo finish: legacy polish on the winner, shared integer
        # stage, warm-state bookkeeping.  With pruning, combos are finished
        # in descending dual-bound order and the integer stage stops once a
        # bound falls strictly below the best rounded objective so far — a
        # pruned combination provably cannot win the argmax.
        finish_order = range(C)
        if prune:
            finish_order = sorted(
                range(C), key=lambda c: float(best_dual[c]), reverse=True
            )
        best_rounded = -np.inf
        last_finished: Optional[int] = None
        for c in finish_order:
            if prune and float(best_dual[c]) < best_rounded:
                self.stats["pruned"] += 1
                continue
            key, combo_key, combo, memo_key, keys, capacities, upper = batch[c]
            n, m = combo.n, combo.m
            x_c = best_x[c, :n].copy()
            if options.polish_rounds > 0:
                with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
                    cyclic_coordinate_polish(
                        x_c, combo.lower, upper, combo.p, V, q,
                        combo.membership @ x_c, capacities, combo.var_rows,
                        options.polish_rounds,
                    )
            if warm_enabled:
                final_mult = best_mult[c, :m].copy()
                final_offset = int(
                    min(offset_b[c] + used[c], options.step_offset_cap)
                )
                structure.combo_warm[combo_key] = (final_mult, final_offset)
                last_finished = c
            outcome = self._finalise(
                combo, memo_key, keys, capacities, upper, x_c, int(used[c])
            )
            self._cache[key] = outcome
            self.evaluations += 1
            if outcome.feasible and outcome.objective > best_rounded:
                best_rounded = outcome.objective
        if warm_enabled and last_finished is not None:
            combo = batch[last_finished][2]
            structure.warm_mult[combo.order_array] = best_mult[
                last_finished, : combo.m
            ]
            structure.warm_ready = True
            structure.step_offset = int(
                min(
                    offset_b[last_finished] + used[last_finished],
                    options.step_offset_cap,
                )
            )

    # ------------------------------------------------------------------ #
    # Per-combination solve
    # ------------------------------------------------------------------ #
    def _solve(self, assignment: Tuple[int, ...]) -> "AllocationOutcome":
        self.stats["solves"] += 1
        outcome_cls = _outcome_class()
        structure = self._structure
        blocks = [self._blocks[i][choice] for i, choice in enumerate(assignment)]
        if not blocks or all(block.hops == 0 for block in blocks):
            return outcome_cls(allocation={}, objective=0.0, feasible=True, cost=0)
        combo_key, combo, combo_cached = structure.combo_for(blocks, self._use_budget)
        precounted = self._combo_precounted.pop(combo_key, None)
        if combo_cached if precounted is None else precounted:
            self.stats["combo_hits"] += 1
        n = combo.n

        keys: List[Tuple[object, Tuple[object, object]]] = []
        for request, block in zip(self._requests, blocks):
            for edge in block.edge_keys:
                keys.append((request, edge))
        p = combo.p
        p_list = combo.p_list

        order_array = combo.order_array
        m = combo.m
        rows_local = combo.rows_local
        membership = combo.membership
        membership_t = combo.membership_t
        capacities = self._capacities[order_array]
        var_rows = combo.var_rows

        V = self._utility_weight
        q = self._cost_weight

        # A solve is a deterministic function of the combination, the
        # active-row capacities and the weights, so an exact input match —
        # common under static resources (myopic-fixed caps, repeated queue
        # prices, the drop-retry loop) — reuses the previous solution pair.
        memo_key = (combo_key, V, q, self._budget_cap, capacities.tobytes())
        memo = structure.solve_memo.get(memo_key)
        if memo is not None:
            structure.solve_memo.move_to_end(memo_key)
            self.stats["memo_hits"] += 1
            relaxed, rounded = memo
            return self._build_outcome(memo_key, keys, relaxed, rounded, store=False)

        lower = combo.lower
        lower_loads = combo.lower_loads
        raw_upper = (capacities - lower_loads + 1.0)[rows_local].min(axis=1)
        infeasible_bounds = bool(np.any(raw_upper < 1.0))
        upper = np.maximum(raw_upper, 1.0)

        options = self._options
        tolerance = options.feasibility_tolerance

        fast_path = combo.fast_path
        a = combo.a
        va = V * a
        neg_log1p = combo.neg_log1p

        def objective_np(x: np.ndarray) -> float:
            """Mirror of :meth:`AllocationProblem.objective_array`."""
            if fast_path:
                log_terms = np.log(-np.expm1(x * neg_log1p))
                return float(V * log_terms.sum() - q * x.sum())
            log_terms = np.empty_like(x)
            safe = p < 1.0
            log_terms[safe] = np.log(-np.expm1(x[safe] * neg_log1p[safe]))
            log_terms[~safe] = 0.0
            return float(V * log_terms.sum() - q * x.sum())

        def row_loads(x: np.ndarray) -> np.ndarray:
            return membership @ x

        def is_feasible(x: np.ndarray, tol: float) -> bool:
            """Mirror of :meth:`AllocationProblem.is_feasible`."""
            if np.any(x < lower - tol):
                return False
            return not np.any(membership @ x > capacities + tol)

        def repair(x: np.ndarray) -> np.ndarray:
            """Mirror of :meth:`AllocationProblem.repair_feasibility`.

            Reductions only ever shrink ``x``, so the rows violated after the
            initial clip are a superset of the rows that need work — the
            common near-feasible iterate costs one matvec and no row loop.
            """
            np.clip(x, lower, upper, out=x)
            violated = np.nonzero(membership @ x - capacities > 1e-12)[0]
            for r in violated:
                members = combo.row_members[r]
                load = float(x[members].sum())
                excess = load - capacities[r]
                if excess <= 1e-12:
                    continue
                headroom = x[members] - lower[members]
                total_headroom = headroom.sum()
                if total_headroom <= 0:
                    continue
                reduction = np.minimum(headroom, headroom * (excess / total_headroom))
                shortfall = excess - reduction.sum()
                if shortfall > 1e-12:
                    order_h = np.argsort(-(headroom - reduction))
                    for index in order_h:
                        available = headroom[index] - reduction[index]
                        take = min(available, shortfall)
                        reduction[index] += take
                        shortfall -= take
                        if shortfall <= 1e-12:
                            break
                x[members] = x[members] - reduction
            return x

        def integer_objective(values: np.ndarray) -> float:
            """Mirror of :meth:`AllocationProblem.objective` on integers."""
            utility = 0.0
            for p_i, value in zip(p_list, values):
                utility += log_multi_channel_success(p_i, float(value))
            return V * utility - q * float(values.sum())

        # ----- minimum-footprint infeasibility: reject the combination --- #
        if infeasible_bounds or np.any(lower_loads > capacities + 1e-6):
            relaxed = ContinuousSolution(
                values=tuple(1.0 for _ in range(n)),
                objective=objective_np(lower),
                feasible=False,
            )
            values = lower.astype(int)
            rounded = IntegerSolution(
                values=tuple(int(v) for v in values),
                objective=integer_objective(lower),
                feasible=False,
            )
            return self._build_outcome(memo_key, keys, relaxed, rounded)

        # ----- warm-started projected-subgradient dual ascent ------------ #
        step_scale = options.initial_step
        if step_scale is None:
            step_scale = max(V, 1.0) / max(float(capacities.max()), 1.0)

        # Warm starts and replay mode are mutually exclusive: a warm seed (or
        # saving the last oscillating iterate as one) would break the
        # ``dual_tolerance=0`` promise of replaying the legacy schedule.
        # A revisited combination re-seeds from its own best multipliers
        # (tight for it by construction); a new combination falls back to
        # the global per-resource vector of the previous solve.
        warm_enabled = options.warm_start and options.dual_tolerance > 0.0
        combo_warm = structure.combo_warm.get(combo_key) if warm_enabled else None
        if combo_warm is not None:
            mult = combo_warm[0].copy()
            offset = combo_warm[1]
        elif warm_enabled and structure.warm_ready:
            mult = structure.warm_mult[order_array].copy()
            offset = structure.step_offset
        else:
            mult = np.zeros(m, dtype=float)
            offset = 0

        base_prices = np.full(n, q)
        best_x: Optional[np.ndarray] = None
        best_objective = -math.inf
        best_dual = math.inf
        best_mult: Optional[np.ndarray] = None
        gap_tolerance = options.dual_tolerance
        max_iterations = options.dual_iterations
        check_every = options.primal_check_every
        used = max_iterations
        x = lower.copy()

        def polish(candidate: np.ndarray, rounds: Optional[int] = None) -> np.ndarray:
            rounds = options.polish_rounds if rounds is None else rounds
            if rounds > 0:
                cyclic_coordinate_polish(
                    candidate, lower, upper, p, V, q, row_loads(candidate),
                    capacities, var_rows, rounds,
                )
            return candidate

        x_unconstrained: Optional[np.ndarray] = None

        def fast_polish(candidate: np.ndarray) -> np.ndarray:
            """One vectorised water-fill step towards the per-variable optimum.

            The horizon-mode stand-in for the in-loop single cyclic polish
            round: every variable moves towards its unconstrained optimum
            simultaneously — decreases are always feasible, increases are
            capped by the row slacks and scaled back so that no shared row
            can overflow (each variable's scale is bounded by every one of
            its rows' slack/increase ratios).  ~10 array ops instead of a
            per-variable Python loop, at a slightly looser (still feasible)
            primal bound.
            """
            target = x_unconstrained
            slack = capacities - membership @ candidate
            headroom = slack[rows_local].min(axis=1)
            raise_by = np.clip(target - candidate, 0.0, np.maximum(headroom, 0.0))
            increase = membership @ raise_by
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(increase > 0.0, slack / increase, 1.0)
            scale = np.minimum(1.0, ratios[rows_local].min(axis=1))
            lower_by = np.clip(candidate - target, 0.0, candidate - lower)
            candidate += raise_by * np.maximum(scale, 0.0) - lower_by
            return candidate

        def best_response(prices: np.ndarray) -> np.ndarray:
            if fast_path:
                x = np.log1p(va / np.maximum(prices, 1e-300)) / a
                x = np.where(prices <= 0.0, upper, x)
                np.clip(x, lower, upper, out=x)
                return x
            return _closed_form_best_response(prices, p, V, lower, upper)

        polished_final = False
        direct = False
        direct_mult: Optional[np.ndarray] = None
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            if options.horizon_mode and gap_tolerance > 0.0:
                # Exact KKT shortcuts of the horizon-compiled mode.  The
                # objective is separable and concave, so (a) a feasible
                # unconstrained best response is the optimum of the whole
                # relaxation, and (b) when only the budget row binds, the
                # optimum is the best response at ``q + λ*`` where the single
                # multiplier λ* makes the budget tight — found by bisection
                # (the total allocation is continuous and decreasing in λ).
                x0 = best_response(base_prices)
                x_unconstrained = x0
                loads0 = membership @ x0
                violated0 = loads0 > capacities + tolerance
                if not violated0.any():
                    best_x = x0
                    used = 1
                    direct = True
                    direct_mult = np.zeros(m, dtype=float)
                elif (
                    self._use_budget
                    and bool(violated0[m - 1])
                    and not violated0[: m - 1].any()
                ):
                    cap_total = capacities[m - 1]
                    lo, hi = 0.0, max(step_scale, 1.0)
                    evals = 1
                    while float(best_response(base_prices + hi).sum()) > cap_total and evals < 80:
                        lo, hi = hi, hi * 2.0
                        evals += 1
                    for _ in range(60):
                        mid = 0.5 * (lo + hi)
                        evals += 1
                        if float(best_response(base_prices + mid).sum()) > cap_total:
                            lo = mid
                        else:
                            hi = mid
                    x_star = best_response(base_prices + hi)
                    # λ > 0 may only tighten the other rows (x decreases in
                    # λ), so feasibility of the budget row is feasibility of
                    # the whole system.
                    if float(x_star.sum()) <= cap_total + tolerance:
                        best_x = x_star
                        used = evals
                        direct = True
                        direct_mult = np.zeros(m, dtype=float)
                        direct_mult[m - 1] = hi
                if direct:
                    self.stats["direct_solves"] += 1
                    best_objective = objective_np(best_x)
            if direct:
                pass
            elif gap_tolerance > 0.0:
                # Adaptive mode: Polyak-sized steps aimed at the best polished
                # primal bound, with a duality-gap early stop.  The repaired
                # subgradient iterate alone is a weak primal bound — polishing
                # every candidate is what makes the gap certify within a
                # handful of iterations (and what sizes the steps well).
                polished_final = True
                step_cap = 5.0 * step_scale
                for k in range(max_iterations):
                    prices = base_prices + membership_t @ mult
                    x = best_response(prices)
                    violation = membership @ x - capacities
                    dual_value = objective_np(x) - float(mult @ violation)
                    improved = dual_value < best_dual
                    if improved:
                        best_dual = dual_value
                        best_mult = mult.copy()
                    if improved or k == 0:
                        # A tighter dual iterate is also the better primal
                        # candidate; repairing/polishing only then skips the
                        # oscillating iterates.  One polish round tightens
                        # the primal bound enough for the gap test; the
                        # winner gets the remaining rounds after the loop.
                        repaired = repair(x.copy())
                        if is_feasible(repaired, tolerance):
                            if x_unconstrained is not None:
                                candidate = fast_polish(repaired)
                            else:
                                candidate = polish(
                                    repaired, rounds=min(options.polish_rounds, 1)
                                )
                            objective = objective_np(candidate)
                            if objective > best_objective:
                                best_objective = objective
                                best_x = candidate
                    if (
                        best_x is not None
                        and best_dual - best_objective
                        <= gap_tolerance * max(1.0, abs(best_objective))
                    ):
                        used = k + 1
                        self.stats["early_stops"] += 1
                        break
                    # Polyak step towards the best primal bound; the reduced
                    # violation zeroes rows whose multiplier is pinned at 0.
                    effective = np.where((mult > 0.0) | (violation > 0.0), violation, 0.0)
                    norm2 = float(effective @ effective)
                    step = (dual_value - best_objective) / max(norm2, 1e-12)
                    if not (0.0 < step < step_cap):
                        step = (
                            step_cap
                            if step >= step_cap
                            else step_scale / math.sqrt(offset + k + 1.0)
                        )
                    mult = np.maximum(0.0, mult + step * violation)
            else:
                # Replay mode (``dual_tolerance=0``): the legacy solver's
                # fixed subgradient schedule, checkpoints and final polish,
                # reproduced exactly — the cross-check reference.
                for k in range(max_iterations):
                    prices = base_prices + membership_t @ mult
                    x = best_response(prices)
                    violation = membership @ x - capacities
                    step = step_scale / math.sqrt(offset + k + 1.0)
                    mult = np.maximum(0.0, mult + step * violation)
                    if (k + 1) % check_every == 0 or k == max_iterations - 1:
                        repaired = repair(x.copy())
                        if is_feasible(repaired, tolerance):
                            objective = objective_np(repaired)
                            if objective > best_objective:
                                best_objective = objective
                                best_x = repaired

        self.stats["dual_iterations"] += used
        if warm_enabled:
            # Seed the next combination (or the next slot's binding) with the
            # multipliers of the best dual bound seen — the last subgradient
            # iterate oscillates; the best iterate is the tight one.  Direct
            # solves store their exact multipliers (zero, or λ* on the
            # budget row).
            if direct:
                final_mult = direct_mult
                final_offset = min(offset + used, options.step_offset_cap)
            else:
                final_mult = mult if best_mult is None else best_mult
                final_offset = min(offset + used, options.step_offset_cap)
            structure.warm_mult[order_array] = final_mult
            structure.warm_ready = True
            structure.step_offset = final_offset
            structure.combo_warm[combo_key] = (final_mult, final_offset)

        if best_x is None:
            best_x = repair(x.copy())
            polished_final = False
        if direct:
            # The direct solutions are exact optima of the separable concave
            # relaxation; the coordinate-wise polish is a no-op on them.
            pass
        elif polished_final and x_unconstrained is not None:
            # Horizon mode: in-loop candidates saw only the vectorised
            # water-fill; the winner gets the full legacy polish effort.
            best_x = polish(best_x)
        elif polished_final:
            # The winning candidate saw one polish round in the loop; give it
            # the remaining rounds to reach the legacy polish effort.
            best_x = polish(best_x, rounds=max(options.polish_rounds - 1, 0))
        else:
            best_x = polish(best_x)
        guard = guard_hooks.get()
        if guard is not None:
            # Strict-level dual certificates: multipliers stay finite and
            # non-negative, and the best dual value bounds the best feasible
            # primal value (weak duality).  Observational only — the solve
            # itself is untouched.
            guard.check_kernel_dual(
                best_dual,
                best_objective,
                multipliers=direct_mult
                if direct
                else (best_mult if best_mult is not None else mult),
                gap_tolerance=gap_tolerance,
            )
        return self._finalise(
            combo, memo_key, keys, capacities, upper, best_x, used
        )

    # ------------------------------------------------------------------ #
    # Shared integer stage (down-round + surplus) of a relaxed solution
    # ------------------------------------------------------------------ #
    def _finalise(
        self,
        combo: _ComboStructure,
        memo_key: Tuple,
        keys: List[Tuple[object, Tuple[object, object]]],
        capacities: np.ndarray,
        upper: np.ndarray,
        best_x: np.ndarray,
        used: int,
    ) -> "AllocationOutcome":
        """Round a (polished) relaxed point and build the cached outcome."""
        structure = self._structure
        V = self._utility_weight
        q = self._cost_weight
        p = combo.p
        p_list = combo.p_list
        membership = combo.membership
        lower = combo.lower
        tolerance = self._options.feasibility_tolerance

        def objective_np(x: np.ndarray) -> float:
            if combo.fast_path:
                log_terms = np.log(-np.expm1(x * combo.neg_log1p))
                return float(V * log_terms.sum() - q * x.sum())
            log_terms = np.empty_like(x)
            safe = p < 1.0
            log_terms[safe] = np.log(-np.expm1(x[safe] * combo.neg_log1p[safe]))
            log_terms[~safe] = 0.0
            return float(V * log_terms.sum() - q * x.sum())

        def is_feasible(x: np.ndarray, tol: float) -> bool:
            if np.any(x < lower - tol):
                return False
            return not np.any(membership @ x > capacities + tol)

        def integer_objective(values: np.ndarray) -> float:
            utility = 0.0
            for p_i, value in zip(p_list, values):
                utility += log_multi_channel_success(p_i, float(value))
            return V * utility - q * float(values.sum())

        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            best_objective = objective_np(best_x)
            relaxed_feasible = is_feasible(best_x, tolerance)
            relaxed = ContinuousSolution(
                values=tuple(float(v) for v in best_x),
                objective=best_objective,
                feasible=relaxed_feasible,
                iterations=used,
            )

            # ----- down-round and hand out the surplus ------------------- #
            floored = np.maximum(np.floor(best_x + 1e-9), 1.0)
            if not (relaxed_feasible and is_feasible(floored, 1e-6)):
                rounded = IntegerSolution(
                    values=tuple(int(v) for v in floored),
                    objective=integer_objective(floored),
                    feasible=False,
                )
                return self._build_outcome(memo_key, keys, relaxed, rounded)

            loads = membership @ floored
            slack_total = float(np.sum(np.maximum(capacities - loads, 0.0)))
            surplus_pass(
                floored, upper, p, V, q, loads, capacities, combo.rows_local,
                int(slack_total) + combo.n,
            )
            objective = integer_objective(floored)
            if not math.isfinite(objective):
                objective = float("-inf")
            rounded = IntegerSolution(
                values=tuple(int(v) for v in floored),
                objective=objective,
                feasible=True,
            )
            return self._build_outcome(memo_key, keys, relaxed, rounded)

    def _build_outcome(
        self,
        memo_key: Tuple,
        keys: List[Tuple[object, Tuple[object, object]]],
        relaxed: ContinuousSolution,
        rounded: IntegerSolution,
        store: bool = True,
    ) -> "AllocationOutcome":
        """The single point where solved pairs enter the memo and become outcomes."""
        guard = guard_hooks.get()
        if guard is not None:
            guard.check_kernel_solution(relaxed, rounded)
        if store:
            structure = self._structure
            structure.solve_memo[memo_key] = (relaxed, rounded)
            while len(structure.solve_memo) > MAX_SOLVE_MEMO:
                structure.solve_memo.popitem(last=False)
        allocation = {
            key: int(value) for key, value in zip(keys, rounded.values)
        }
        return _outcome_class()(
            allocation=allocation,
            objective=rounded.objective,
            feasible=rounded.feasible,
            cost=int(sum(rounded.values)) if rounded.feasible else 0,
            integer_solution=rounded,
            relaxed_solution=relaxed,
        )


class KernelCache:
    """Horizon-scoped cache of compiled structures and aggregate kernel stats.

    Owned by one :class:`~repro.core.per_slot.PerSlotSolver` (i.e. one
    policy): route selectors call :meth:`bind` once per select — across the
    drop-retry loop, consecutive slots and whole horizons — and get back a
    :class:`SlotKernel` bound to the slot's right-hand sides but sharing the
    compiled structure and the carried warm-start duals.  The cache is
    strictly per-process and per-policy, so parallel study workers (which
    each build their own solvers) stay byte-identical to serial runs.
    """

    def __init__(self, max_structures: int = 4) -> None:
        if max_structures < 1:
            raise ValueError("max_structures must be at least 1")
        self.max_structures = int(max_structures)
        self._structures: "OrderedDict[Tuple, CompiledStructure]" = OrderedDict()
        self._last_kernel: Optional[SlotKernel] = None
        self._totals: Dict[str, int] = {key: 0 for key in STAT_KEYS}
        self._totals["binds"] = 0
        self._totals["structure_compiles"] = 0
        self._totals["evaluations"] = 0

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    def bind(
        self,
        allocator,
        context: "SlotContext",
        requests: Sequence["SDPair"],
        candidate_routes: Sequence[Sequence["Route"]],
        utility_weight: float = 1.0,
        cost_weight: float = 0.0,
        budget_cap: Optional[float] = None,
        dual_tolerance: Optional[float] = None,
        warm_start: bool = True,
    ) -> Optional[SlotKernel]:
        """Bind a kernel for this slot, compiling the structure only on miss.

        Returns ``None`` when the allocator's relaxed solver does not map
        onto the kernel (callers fall back to the legacy object path).
        """
        options = kernel_options_for(
            allocator.solver,
            dual_tolerance=dual_tolerance,
            warm_start=warm_start,
            horizon_mode=True,
        )
        if options is None:
            return None
        self._flush_last()
        signature = structure_signature(context.graph)
        structure = self._structures.get(signature)
        if structure is None:
            structure = CompiledStructure(context.graph)
            self._structures[signature] = structure
            self._totals["structure_compiles"] += 1
            while len(self._structures) > self.max_structures:
                self._structures.popitem(last=False)
        else:
            self._structures.move_to_end(signature)
        self._totals["binds"] += 1
        kernel = SlotKernel(
            context=context,
            requests=requests,
            candidate_routes=candidate_routes,
            utility_weight=utility_weight,
            cost_weight=cost_weight,
            budget_cap=budget_cap,
            options=options,
            structure=structure,
        )
        self._last_kernel = kernel
        return kernel

    # ------------------------------------------------------------------ #
    # Stats & lifecycle
    # ------------------------------------------------------------------ #
    def _flush_last(self) -> None:
        kernel = self._last_kernel
        if kernel is None:
            return
        for key in STAT_KEYS:
            self._totals[key] += kernel.stats.get(key, 0)
        self._totals["evaluations"] += kernel.evaluations
        self._last_kernel = None

    def aggregate_stats(self) -> Dict[str, int]:
        """Horizon totals: binds, structure compiles, solves, cache hits, …

        ``binds - structure_compiles`` is the number of *re-binds* — slots
        (or drop-retry iterations) that reused a compiled structure instead
        of recompiling it.
        """
        self._flush_last()
        totals = dict(self._totals)
        totals["rebinds"] = totals["binds"] - totals["structure_compiles"]
        return totals

    def reset(self) -> None:
        """Drop all structures, warm state and totals (fresh-run semantics)."""
        self._structures.clear()
        self._last_kernel = None
        for key in self._totals:
            self._totals[key] = 0
