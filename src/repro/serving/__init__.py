"""The open-system serving layer: streaming arrivals, admission, sharding.

Batch runs solve a fixed request set over a fixed horizon; this package
turns the same simulators into a long-lived service.  Three pieces:

* :mod:`repro.serving.arrivals` — streaming session sources (Poisson and
  trace-driven) with per-user lifecycles (join, renew, depart mid-run) and
  seed-derived per-session RNG streams.
* :mod:`repro.serving.admission` — pluggable admission policies gating
  joins on the Lyapunov virtual-queue backlog (always-admit,
  backlog-threshold, token-bucket, availability-gate), registered by name.
* :mod:`repro.serving.scheduler` — the sharded session scheduler:
  consistent-hash partitioning, periodic state merge, optional process-pool
  shard workers, byte-identical for any shard layout under a fixed seed.

Enable it on any scenario with ``Scenario.with_serving(...)`` or run
``python -m repro serve``.
"""

from repro.serving.admission import (
    AdmissionPolicy,
    AdmissionState,
    AlwaysAdmit,
    AvailabilityGate,
    BacklogThreshold,
    TokenBucket,
    UnknownAdmissionPolicyError,
    available_admission_policies,
    make_admission_policy,
    register_admission_policy,
)
from repro.serving.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    PoissonArrivals,
    SessionSpec,
    TraceArrivals,
    build_arrivals,
)
from repro.serving.scheduler import (
    SERVING_LINEUP_NAME,
    ServingModel,
    ServingSimulator,
    jain_fairness,
    mean_sojourn_slots,
    merge_serving_stats,
    serving_requests_per_second,
    shard_for_session,
)

__all__ = [
    "ARRIVAL_KINDS",
    "SERVING_LINEUP_NAME",
    "AdmissionPolicy",
    "AdmissionState",
    "AlwaysAdmit",
    "ArrivalProcess",
    "AvailabilityGate",
    "BacklogThreshold",
    "PoissonArrivals",
    "ServingModel",
    "ServingSimulator",
    "SessionSpec",
    "TokenBucket",
    "TraceArrivals",
    "UnknownAdmissionPolicyError",
    "available_admission_policies",
    "build_arrivals",
    "jain_fairness",
    "make_admission_policy",
    "mean_sojourn_slots",
    "merge_serving_stats",
    "register_admission_policy",
    "serving_requests_per_second",
    "shard_for_session",
]
