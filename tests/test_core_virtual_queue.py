"""Tests for repro.core.virtual_queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.virtual_queue import VirtualQueue


class TestVirtualQueue:
    def test_initial_state(self):
        queue = VirtualQueue(initial_length=10.0, per_slot_budget=25.0)
        assert queue.length == 10.0
        assert queue.history == [10.0]

    def test_for_budget_constructor(self):
        queue = VirtualQueue.for_budget(total_budget=5000.0, horizon=200, initial_length=10.0)
        assert queue.per_slot_budget == pytest.approx(25.0)
        assert queue.length == 10.0

    def test_update_recursion(self):
        """q_{t+1} = max(0, q_t + c_t - C/T) — the paper's Eq. (7)."""
        queue = VirtualQueue(initial_length=0.0, per_slot_budget=25.0)
        assert queue.update(30.0) == pytest.approx(5.0)
        assert queue.update(30.0) == pytest.approx(10.0)
        assert queue.update(10.0) == pytest.approx(0.0)  # clipped at zero
        assert queue.history == [0.0, 5.0, 10.0, 0.0]

    def test_under_spending_drains_queue(self):
        queue = VirtualQueue(initial_length=100.0, per_slot_budget=25.0)
        queue.update(0.0)
        assert queue.length == pytest.approx(75.0)

    def test_reset(self):
        queue = VirtualQueue(initial_length=5.0, per_slot_budget=10.0)
        queue.update(50.0)
        queue.reset()
        assert queue.length == 5.0
        assert queue.history == [5.0]

    def test_negative_cost_rejected(self):
        queue = VirtualQueue(initial_length=0.0, per_slot_budget=10.0)
        with pytest.raises(ValueError):
            queue.update(-1.0)

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            VirtualQueue(initial_length=-1.0, per_slot_budget=10.0)

    def test_drift_term(self):
        queue = VirtualQueue(initial_length=4.0, per_slot_budget=10.0)
        assert queue.drift(16.0) == pytest.approx(4.0 * 6.0)

    @given(
        costs=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50),
        budget=st.floats(1.0, 50.0),
        q0=st.floats(0.0, 50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_queue_never_negative_and_bounds_overspending(self, costs, budget, q0):
        """Invariants: q_t >= 0 and q_T >= q_0 + Σ(c_t - C/T) (queue dominates deficit)."""
        queue = VirtualQueue(initial_length=q0, per_slot_budget=budget)
        for cost in costs:
            queue.update(cost)
            assert queue.length >= 0.0
        deficit = q0 + sum(costs) - budget * len(costs)
        assert queue.length >= deficit - 1e-9

    @given(costs=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_history_length_tracks_updates(self, costs):
        queue = VirtualQueue(initial_length=0.0, per_slot_budget=5.0)
        for cost in costs:
            queue.update(cost)
        assert len(queue.history) == len(costs) + 1
