"""Rounding of relaxed allocations (Algorithm 2, step 4).

The paper rounds the relaxed optimum ``ñ*`` by *down-rounding* each value
(never below the lower bound of one channel) and then re-allocating any
capacity surplus to edges that can still accept it.  Down-rounding keeps
the allocation feasible, the surplus pass only adds channels where all
constraints still have slack, and the resulting integer solution satisfies
``n* >= 1`` and ``ñ* − n* <= 1`` (paper, Eq. 8), which drives the
``Δ``-optimality bound of Proposition 2.

The surplus pass operates on flat arrays (:func:`surplus_pass`) so the same
vectorised routine serves both the legacy object path and the compiled slot
kernel — the per-coordinate Python loop that used to recompute every
marginal gain on every pass is gone.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.network.channels import log_multi_channel_success
from repro.solvers.allocation_problem import (
    AllocationProblem,
    ContinuousSolution,
    IntegerSolution,
)

#: Minimal gain that justifies handing out one more surplus channel.
_GAIN_EPSILON = 1e-12


def _marginal_gain(
    slot_success: float, value: float, utility_weight: float, cost_weight: float
) -> float:
    """Objective gain of one extra channel: ``V·[log P(n+1) − log P(n)] − q``.

    ``-inf`` marks variables that can never profit (``p = 0`` yields a
    ``-inf − -inf`` marginal in the object path, which is equally never
    selected).
    """
    if slot_success <= 0.0:
        return float("-inf")
    gain = log_multi_channel_success(slot_success, value + 1.0) - log_multi_channel_success(
        slot_success, value
    )
    if math.isnan(gain):
        return float("-inf")
    return utility_weight * gain - cost_weight


def surplus_pass(
    values: np.ndarray,
    upper: np.ndarray,
    slot_successes: Sequence[float],
    utility_weight: float,
    cost_weight: float,
    loads: np.ndarray,
    capacities: np.ndarray,
    var_rows: Sequence[Sequence[int]],
    max_passes: int,
) -> None:
    """Greedily hand out leftover capacity, one channel at a time (in place).

    ``values`` (float array of integral values) and ``loads`` are updated in
    place; ``var_rows[i]`` lists the constraint rows variable ``i`` belongs
    to.  Each pass increments the variable with the largest positive
    marginal gain among those whose constraints all retain at least one unit
    of slack; near-ties (within 1e-12) resolve to the lowest index, matching
    the original scan order.
    """
    n = int(values.shape[0])
    if n == 0 or max_passes <= 0:
        return
    m = int(capacities.shape[0])

    # Pad the per-variable row lists into a rectangular gather matrix; the
    # dummy row m has infinite slack so it never masks anything.  A 2-D
    # index array (the kernel's compiled form) is used as-is.
    if isinstance(var_rows, np.ndarray) and var_rows.ndim == 2:
        rows_matrix = var_rows
    else:
        width = max((len(rows) for rows in var_rows), default=0)
        if width == 0:
            rows_matrix = np.full((n, 1), m, dtype=np.intp)
        else:
            rows_matrix = np.full((n, width), m, dtype=np.intp)
            for i, rows in enumerate(var_rows):
                if len(rows):
                    rows_matrix[i, : len(rows)] = rows

    # Initial marginal gains, vectorised: V·[log P(n+1) − log P(n)] − q with
    # the degenerate probabilities pinned exactly as _marginal_gain pins them.
    p = np.asarray(slot_successes, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        lp = np.log1p(-np.clip(p, 0.0, 1.0 - 1e-15))
        new_log = np.log(-np.expm1((values + 1.0) * lp))
        old_log = np.log(-np.expm1(values * lp))
        gains = utility_weight * (new_log - old_log) - cost_weight
    gains[p <= 0.0] = -math.inf
    gains[p >= 1.0] = -cost_weight
    gains[np.isnan(gains)] = -math.inf

    slack_ext = np.empty(m + 1, dtype=float)
    slack_ext[m] = math.inf
    for _ in range(max_passes):
        slack_ext[:m] = capacities - loads
        eligible = (values + 1.0 <= upper + 1e-9) & (
            slack_ext[rows_matrix].min(axis=1) >= 1.0 - 1e-9
        )
        masked = np.where(eligible, gains, -math.inf)
        best_gain = float(masked.max())
        if best_gain <= _GAIN_EPSILON:
            break
        if math.isinf(best_gain):
            best_index = int(np.argmax(np.isposinf(masked)))
        else:
            best_index = int(np.argmax(masked > best_gain - _GAIN_EPSILON))
        values[best_index] += 1.0
        rows = var_rows[best_index]
        if len(rows):
            loads[np.asarray(rows, dtype=np.intp)] += 1.0
        gains[best_index] = _marginal_gain(
            float(slot_successes[best_index]),
            float(values[best_index]),
            utility_weight,
            cost_weight,
        )


def round_down_with_surplus(
    problem: AllocationProblem,
    relaxed: ContinuousSolution,
    max_surplus_passes: Optional[int] = None,
) -> IntegerSolution:
    """Down-round a relaxed solution and greedily hand out leftover capacity.

    The surplus pass repeatedly adds one channel to the variable with the
    largest positive marginal objective gain (``V·[log P(n+1) − log P(n)] −
    q``) among variables whose constraints all still have at least one unit
    of slack; it stops when no variable can be incremented profitably.
    ``max_surplus_passes`` bounds the number of increments (defaults to the
    total remaining integer capacity, which always terminates).
    """
    n = problem.num_variables
    if n == 0:
        return IntegerSolution(values=(), objective=0.0, feasible=True)

    lower = problem.lower_bounds()
    relaxed_values = relaxed.as_array()
    floored = np.maximum(np.floor(relaxed_values + 1e-9), np.ceil(lower - 1e-9))
    values = floored.astype(int)

    feasible = problem.is_feasible(values) and relaxed.feasible
    if not feasible:
        # The relaxed point itself was infeasible (e.g. the all-ones
        # allocation does not fit); report the floored point without trying
        # to "fix" it, so callers can reject this route combination.
        return IntegerSolution(
            values=tuple(int(v) for v in values),
            objective=problem.objective(values),
            feasible=False,
        )

    constraints = problem.constraints
    capacities = np.asarray([c.capacity for c in constraints], dtype=float)
    loads = np.asarray([c.load(values) for c in constraints], dtype=float)
    var_constraints: List[List[int]] = [[] for _ in range(n)]
    for c_index, constraint in enumerate(constraints):
        for member in constraint.members:
            var_constraints[member].append(c_index)

    if max_surplus_passes is None:
        slack_total = float(np.sum(np.maximum(capacities - loads, 0.0))) if len(constraints) else 0.0
        max_surplus_passes = int(slack_total) + n

    working = values.astype(float)
    surplus_pass(
        working,
        problem.upper_bounds(),
        problem.slot_successes(),
        problem.utility_weight,
        problem.cost_weight,
        loads,
        capacities,
        var_constraints,
        max_surplus_passes,
    )
    values = working.astype(int)

    objective = problem.objective(values)
    # Guard against pathological float issues: the returned point must be
    # feasible because we only incremented where slack existed.
    assert problem.is_feasible(values), "surplus allocation produced an infeasible point"
    if not math.isfinite(objective):
        objective = float("-inf")
    return IntegerSolution(
        values=tuple(int(v) for v in values),
        objective=objective,
        feasible=True,
    )
