"""Multi-user operation of a shared QDN.

The paper optimises routing for a *single* user and models everyone else as
an exogenous occupancy process ("some qubits may be occupied by other
users", Sec. III-A).  This module closes that loop: several users — each
with its own request process, budget and routing policy (OSCAR or a
baseline) — share one QDN, and what one user allocates in a slot is simply
unavailable to the users served after it in that slot.

The provider grants access in a rotating (round-robin) priority order so no
user is permanently first; from each individual user's perspective the
others' consumption looks exactly like the exogenous availability process
the paper assumes, which makes this a faithful multi-tenant extension rather
than a different problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.policy import RoutingPolicy
from repro.core.problem import SlotContext, SlotDecision
from repro.network.graph import EdgeKey, NodeName, QDNGraph, ResourceSnapshot
from repro.network.routes import Route, build_candidate_routes
from repro.simulation.clock import SlotClock
from repro.simulation.link_layer import LinkLayerSimulator
from repro.simulation.physical import PhysicalModel
from repro.simulation.results import SimulationResult, SlotRecord
from repro.utils.rng import SeedLike, as_generator, spawn_rngs
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.requests import RequestProcess, SDPair, UniformRequestProcess


@dataclass
class QDNUser:
    """One tenant of the QDN: a policy, a workload and a budget."""

    name: str
    policy: RoutingPolicy
    request_process: RequestProcess = field(default_factory=UniformRequestProcess)
    total_budget: float = 5000.0

    def __post_init__(self) -> None:
        check_non_negative(self.total_budget, "total_budget")
        if not self.name:
            raise ValueError("a user needs a non-empty name")


@dataclass(frozen=True)
class ProviderSlotRecord:
    """Provider-side view of one slot: aggregate utilisation across users."""

    t: int
    qubit_utilisation: float
    channel_utilisation: float
    total_cost: int
    served_requests: int
    total_requests: int


@dataclass(frozen=True)
class MultiUserOutcome:
    """Results of a multi-user run: one result per user plus the provider view."""

    user_results: Mapping[str, SimulationResult]
    provider_records: Tuple[ProviderSlotRecord, ...]

    def provider_average_utilisation(self) -> Dict[str, float]:
        """Mean qubit and channel utilisation over the horizon."""
        if not self.provider_records:
            return {"qubits": 0.0, "channels": 0.0}
        qubit = sum(r.qubit_utilisation for r in self.provider_records) / len(self.provider_records)
        channel = sum(r.channel_utilisation for r in self.provider_records) / len(self.provider_records)
        return {"qubits": qubit, "channels": channel}

    def total_served_fraction(self) -> float:
        """Fraction of all users' requests that were served."""
        served = sum(r.served_requests for r in self.provider_records)
        total = sum(r.total_requests for r in self.provider_records)
        return served / total if total else 1.0


def _subtract_decision(
    qubits: Dict[NodeName, int], channels: Dict[EdgeKey, int], decision: SlotDecision
) -> None:
    """Remove a decision's resource usage from the remaining availability."""
    for node, used in decision.node_usage().items():
        qubits[node] = max(0, qubits[node] - used)
    for key, used in decision.edge_usage().items():
        channels[key] = max(0, channels[key] - used)


@dataclass
class MultiUserSimulator:
    """Simulates several users sharing one QDN over a common horizon.

    Parameters
    ----------
    graph:
        The shared QDN.
    users:
        The tenants, in their base priority order; the actual service order
        rotates by one position each slot so that average priority is equal.
    horizon:
        Number of slots.
    num_candidate_routes / max_extra_hops:
        Candidate-set construction parameters (shared by every user, as the
        provider would pre-compute them).
    realize:
        Monte-Carlo-realise every EC (adds realized success information).
    physical:
        Optional :class:`~repro.simulation.physical.PhysicalModel`: when set
        every tenant's realised ECs additionally run the physical delivery
        chain (each user gets its own engine so the provider can account
        physical resources per tenant).  Requires ``realize=True``; when
        ``None`` the run consumes exactly the historical random streams.
    """

    graph: QDNGraph
    users: Sequence[QDNUser]
    horizon: int = 50
    num_candidate_routes: int = 4
    max_extra_hops: Optional[int] = 2
    realize: bool = True
    physical: Optional[PhysicalModel] = None

    def __post_init__(self) -> None:
        check_positive(self.horizon, "horizon")
        if not self.users:
            raise ValueError("at least one user is required")
        names = [user.name for user in self.users]
        if len(set(names)) != len(names):
            raise ValueError("user names must be unique")
        self._route_cache: Dict[Tuple[NodeName, NodeName], Tuple[Route, ...]] = {}

    # ------------------------------------------------------------------ #
    # Candidate routes
    # ------------------------------------------------------------------ #
    def _routes_for(self, request: SDPair) -> Tuple[Route, ...]:
        endpoints = request.endpoints
        if endpoints not in self._route_cache:
            computed = build_candidate_routes(
                self.graph,
                [endpoints],
                num_routes=self.num_candidate_routes,
                max_extra_hops=self.max_extra_hops,
            )
            self._route_cache[endpoints] = tuple(computed[endpoints])
        return self._route_cache[endpoints]

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(
        self,
        seed: SeedLike = None,
        on_slot: Optional[Callable[[ProviderSlotRecord], Optional[bool]]] = None,
    ) -> MultiUserOutcome:
        """Run the shared simulation and return per-user and provider results.

        ``on_slot`` receives the provider-side record of every slot as it
        completes; returning ``False`` stops the simulation early (every
        user's records then cover only the slots simulated so far).
        """
        rng = as_generator(seed)
        engines = None
        if self.physical is not None:
            if not self.realize:
                raise ValueError("the physical layer requires realize=True")
            # The fourth stream exists only when the physical layer is on, so
            # disabled runs stay byte-identical to the historical ones.
            request_rng, decision_rng, realization_rng, physical_rng = spawn_rngs(rng, 4)
            engines = {user.name: self.physical.build_engine() for user in self.users}
        else:
            request_rng, decision_rng, realization_rng = spawn_rngs(rng, 3)
            physical_rng = None
        link_layer = LinkLayerSimulator(graph=self.graph)
        clock = SlotClock(attempts_per_slot=self.graph.attempts_per_slot)

        for user in self.users:
            user.policy.reset(self.graph, self.horizon)
            user.request_process.reset()

        per_user_records: Dict[str, List[SlotRecord]] = {user.name: [] for user in self.users}
        provider_records: List[ProviderSlotRecord] = []
        total_qubits = sum(self.graph.qubit_capacity(node) for node in self.graph.nodes)
        total_channels = sum(self.graph.channel_capacity(key) for key in self.graph.edges)

        for t in range(self.horizon):
            remaining_qubits = {
                node: self.graph.qubit_capacity(node) for node in self.graph.nodes
            }
            remaining_channels = {
                key: self.graph.channel_capacity(key) for key in self.graph.edges
            }
            slot_cost = 0
            slot_served = 0
            slot_requests = 0

            # Rotate the service order so no user is always first.
            order = list(self.users)
            rotation = t % len(order)
            order = order[rotation:] + order[:rotation]

            for user in order:
                requests = tuple(user.request_process.sample(t, self.graph, request_rng))
                slot_requests += len(requests)
                snapshot = ResourceSnapshot(
                    qubits=dict(remaining_qubits), channels=dict(remaining_channels)
                )
                context = SlotContext(
                    t=t,
                    graph=self.graph,
                    snapshot=snapshot,
                    requests=requests,
                    candidate_routes={request: self._routes_for(request) for request in requests},
                )
                decision = user.policy.decide(context, seed=decision_rng)
                if not decision.respects_snapshot(snapshot):
                    raise RuntimeError(
                        f"user {user.name!r} violated the remaining capacity in slot {t}"
                    )
                _subtract_decision(remaining_qubits, remaining_channels, decision)

                success_probabilities = tuple(
                    decision.success_probability(self.graph, request)
                    for request in decision.served_requests
                )
                realized: List[bool] = []
                delivered: List[bool] = []
                delivered_fidelities: List[float] = []
                fidelity_served: List[bool] = []
                if self.realize:
                    # One batched draw per (user, slot) — bit-identical to
                    # realising each served request sequentially.
                    items = []
                    for request in decision.served_requests:
                        route = decision.route_for(request)
                        assert route is not None
                        items.append(
                            (
                                route,
                                {
                                    key: decision.channels_for(request, key)
                                    for key in route.edges
                                },
                            )
                        )
                    realized.extend(
                        realization.succeeded
                        for realization in link_layer.realize_routes(
                            items, slot=t, seed=realization_rng
                        )
                    )
                    if engines is not None:
                        delivered, delivered_fidelities, fidelity_served = (
                            engines[user.name].realize_decision(
                                items, realized, len(decision.unserved),
                                seed=physical_rng,
                            )
                        )
                    realized.extend([False] * len(decision.unserved))

                per_user_records[user.name].append(
                    SlotRecord(
                        t=t,
                        num_requests=len(requests),
                        num_served=decision.num_served,
                        cost=decision.cost(),
                        utility=decision.utility(self.graph),
                        success_probabilities=success_probabilities,
                        realized_successes=tuple(realized),
                        delivered_successes=tuple(delivered),
                        delivered_fidelities=tuple(delivered_fidelities),
                        fidelity_served=tuple(fidelity_served),
                        slot_start_s=clock.slot_start(t),
                        slot_end_s=clock.slot_end(t),
                    )
                )
                slot_cost += decision.cost()
                slot_served += decision.num_served

            used_qubits = total_qubits - sum(remaining_qubits.values())
            used_channels = total_channels - sum(remaining_channels.values())
            provider_record = ProviderSlotRecord(
                t=t,
                qubit_utilisation=used_qubits / total_qubits if total_qubits else 0.0,
                channel_utilisation=used_channels / total_channels if total_channels else 0.0,
                total_cost=slot_cost,
                served_requests=slot_served,
                total_requests=slot_requests,
            )
            provider_records.append(provider_record)
            if on_slot is not None and on_slot(provider_record) is False:
                break

        def user_diagnostics(user: QDNUser) -> Mapping[str, object]:
            diagnostics = user.policy.diagnostics()
            if engines is not None:
                diagnostics = engines[user.name].merge_diagnostics(diagnostics)
            return diagnostics

        user_results = {
            user.name: SimulationResult(
                policy_name=f"{user.name}:{user.policy.name}",
                horizon=self.horizon,
                total_budget=user.total_budget,
                records=tuple(per_user_records[user.name]),
                diagnostics=user_diagnostics(user),
            )
            for user in self.users
        }
        return MultiUserOutcome(
            user_results=user_results, provider_records=tuple(provider_records)
        )
