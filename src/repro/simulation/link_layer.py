"""Attempt-level link-layer simulation of an entanglement connection.

The routing layer reasons with the analytic probability
``P(r, N) = Π_e [1 − (1 − p_e)^{n_e}]``; this module *realises* those
probabilities by simulating each edge of a route — either with a fast
Bernoulli draw per edge, or attempt-by-attempt via the physics layer
(generation, swapping, decoherence), which is what validates that the
analytic model and the protocol-level behaviour agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.network.graph import EdgeKey, QDNGraph
from repro.network.routes import Route
from repro.physics.decoherence import DecoherenceModel
from repro.physics.entanglement import EntanglementGenerator, sample_successes
from repro.physics.qubit import BellPair
from repro.physics.swapping import swap_chain
from repro.simulation.clock import SlotClock
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class RouteRealization:
    """Outcome of realising one EC attempt along a route in one slot."""

    succeeded: bool
    edge_outcomes: Mapping[EdgeKey, bool]
    end_to_end_pair: Optional[BellPair] = None
    fidelity: float = 0.0

    @property
    def failed_edges(self) -> Tuple[EdgeKey, ...]:
        """Edges whose link-level entanglement failed this slot."""
        return tuple(key for key, success in self.edge_outcomes.items() if not success)


@dataclass
class LinkLayerSimulator:
    """Realises entanglement connections on top of a :class:`QDNGraph`.

    ``detailed`` switches between the fast Bernoulli mode (default — exactly
    the probabilities the routing layer optimises) and the attempt-level
    physics mode, which also produces end-to-end fidelities by tracking when
    each link was generated and applying decoherence until the end of the
    slot before swapping.
    """

    graph: QDNGraph
    detailed: bool = False
    clock: Optional[SlotClock] = None
    decoherence: Optional[DecoherenceModel] = None
    base_fidelity: float = 0.98
    swap_success: float = 1.0

    def __post_init__(self) -> None:
        check_in_range(self.base_fidelity, 0.0, 1.0, "base_fidelity")
        check_in_range(self.swap_success, 0.0, 1.0, "swap_success")
        if self.clock is None:
            self.clock = SlotClock(attempts_per_slot=self.graph.attempts_per_slot)
        if self.decoherence is None:
            self.decoherence = DecoherenceModel()

    # ------------------------------------------------------------------ #
    # Fast mode
    # ------------------------------------------------------------------ #
    def realize_edge(self, key: EdgeKey, channels: int, rng: np.random.Generator) -> bool:
        """Bernoulli draw of whether the edge's link succeeds this slot."""
        if channels <= 0:
            return False
        return bool(rng.random() < self.graph.link_success(key, channels))

    def realize_route(
        self,
        route: Route,
        allocation: Mapping[EdgeKey, int],
        slot: int = 0,
        seed: SeedLike = None,
    ) -> RouteRealization:
        """Realise one EC along ``route`` given the per-edge channel allocation."""
        rng = as_generator(seed)
        if self.detailed:
            return self._realize_route_detailed(route, allocation, slot, rng)
        outcomes: Dict[EdgeKey, bool] = {}
        succeeded = True
        for key in route.edges:
            outcome = self.realize_edge(key, int(allocation.get(key, 0)), rng)
            outcomes[key] = outcome
            succeeded = succeeded and outcome
        return RouteRealization(
            succeeded=succeeded,
            edge_outcomes=outcomes,
            fidelity=self.base_fidelity if succeeded else 0.0,
        )

    def realize_routes(
        self,
        items: Sequence[Tuple[Route, Mapping[EdgeKey, int]]],
        slot: int = 0,
        seed: SeedLike = None,
    ) -> List[RouteRealization]:
        """Realise one EC per (route, allocation) pair — batched per slot.

        In fast (Bernoulli) mode the per-edge success draws of *all* routes
        are taken in a single batched ``Generator.random(n)`` call per slot;
        NumPy fills the batch from the same bit stream as sequential scalar
        draws, so the outcomes are bit-identical to looping
        :meth:`realize_route` over ``items`` with the same generator (edges
        with no allocated channel consume no randomness, as before).  The
        detailed attempt-level mode keeps its sequential physics simulation.
        """
        rng = as_generator(seed)
        if self.detailed:
            return [
                self._realize_route_detailed(route, allocation, slot, rng)
                for route, allocation in items
            ]
        flat_edges: List[Tuple[int, EdgeKey]] = []
        thresholds: List[float] = []
        for index, (route, allocation) in enumerate(items):
            for key in route.edges:
                channels = int(allocation.get(key, 0))
                if channels > 0:
                    flat_edges.append((index, key))
                    thresholds.append(self.graph.link_success(key, channels))
        draws = sample_successes(thresholds, rng)

        per_route_outcomes: List[Dict[EdgeKey, bool]] = [
            {key: False for key in route.edges} for route, _ in items
        ]
        for (index, key), success in zip(flat_edges, draws):
            per_route_outcomes[index][key] = bool(success)
        realizations: List[RouteRealization] = []
        for (route, _), outcomes in zip(items, per_route_outcomes):
            succeeded = all(outcomes.values()) if outcomes else True
            realizations.append(
                RouteRealization(
                    succeeded=succeeded,
                    edge_outcomes=outcomes,
                    fidelity=self.base_fidelity if succeeded else 0.0,
                )
            )
        return realizations

    # ------------------------------------------------------------------ #
    # Detailed (attempt-level) mode
    # ------------------------------------------------------------------ #
    def _realize_route_detailed(
        self,
        route: Route,
        allocation: Mapping[EdgeKey, int],
        slot: int,
        rng: np.random.Generator,
    ) -> RouteRealization:
        assert self.clock is not None and self.decoherence is not None
        slot_start = self.clock.slot_start(slot)
        slot_end = self.clock.slot_end(slot)

        outcomes: Dict[EdgeKey, bool] = {}
        pairs: List[BellPair] = []
        for (u, v), key in zip(zip(route.nodes[:-1], route.nodes[1:]), route.edges):
            generator = EntanglementGenerator(
                attempt_success=self.graph.attempt_success(key),
                attempts_per_slot=self.graph.attempts_per_slot,
                base_fidelity=self.base_fidelity,
            )
            result = generator.generate(
                node_a=u,
                node_b=v,
                channels=int(allocation.get(key, 0)),
                slot_start_time=slot_start,
                seed=rng,
            )
            outcomes[key] = result.succeeded
            if result.succeeded and result.pair is not None:
                # The pair waits in memory until the end of the slot, when all
                # links are ready and the swaps are performed.
                pairs.append(self.decoherence.evolve_pair(result.pair, slot_end))

        if len(pairs) != route.hops:
            return RouteRealization(succeeded=False, edge_outcomes=outcomes)

        swap = swap_chain(pairs, success_probability=self.swap_success, seed=rng)
        if not swap.succeeded or swap.pair is None:
            return RouteRealization(succeeded=False, edge_outcomes=outcomes)
        return RouteRealization(
            succeeded=True,
            edge_outcomes=outcomes,
            end_to_end_pair=swap.pair,
            fidelity=swap.pair.fidelity,
        )

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    def empirical_route_success(
        self,
        route: Route,
        allocation: Mapping[EdgeKey, int],
        trials: int,
        seed: SeedLike = None,
    ) -> float:
        """Monte-Carlo estimate of the route's EC success probability."""
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        rng = as_generator(seed)
        successes = 0
        for _ in range(trials):
            if self.realize_route(route, allocation, seed=rng).succeeded:
                successes += 1
        return successes / trials

    def analytic_route_success(
        self, route: Route, allocation: Mapping[EdgeKey, int]
    ) -> float:
        """The analytic ``P(r, N)`` the routing layer uses (paper Eq. 2)."""
        probability = 1.0
        for key in route.edges:
            probability *= self.graph.link_success(key, float(allocation.get(key, 0)))
        return probability
