"""End-to-end integration tests: the paper's headline behaviour, in miniature.

These tests run the full pipeline (topology → workload trace → policies →
slotted simulation → metrics) at a scale small enough for CI and assert the
qualitative findings of the paper's evaluation section, plus the internal
consistency guarantees that every layer must provide to every other layer.
"""

import math

import pytest

from repro.analysis.theory import (
    delta_optimality_gap,
    drift_constant_bound,
    theorem1_violation_bound,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_comparison
from repro.simulation.engine import SlottedSimulator


@pytest.fixture(scope="module")
def integration_config():
    """A budget-constrained configuration: C/T = 25 with up to 4 requests/slot."""
    return ExperimentConfig(
        num_nodes=10,
        horizon=15,
        total_budget=375.0,
        trials=1,
        max_pairs=4,
        gibbs_iterations=15,
        num_candidate_routes=3,
        base_seed=321,
    )


@pytest.fixture(scope="module")
def comparison(integration_config):
    return run_comparison(integration_config, seed=77)


class TestPaperHeadlineFindings:
    def test_oscar_beats_myopic_fixed_in_utility_and_success(self, comparison):
        summary = comparison.summary()
        assert (
            summary["OSCAR"]["average_success_rate"].mean
            >= summary["MF"]["average_success_rate"].mean - 0.01
        )
        assert (
            summary["OSCAR"]["average_utility"].mean
            >= summary["MF"]["average_utility"].mean - 0.02
        )

    def test_oscar_spends_at_least_as_much_as_mf(self, comparison):
        """MF's fixed per-slot cap strands budget that OSCAR re-deploys."""
        summary = comparison.summary()
        assert summary["OSCAR"]["total_cost"].mean >= summary["MF"]["total_cost"].mean - 1e-9

    def test_every_policy_respects_capacity_and_serves_requests(self, comparison):
        for trial in comparison.trials:
            for result in trial.values():
                assert result.served_fraction() > 0.9
                for record in result.records:
                    assert record.cost >= record.num_served

    def test_oscar_budget_violation_is_small(self, comparison, integration_config):
        summary = comparison.summary()
        violation = summary["OSCAR"]["budget_violation"].mean
        assert violation <= 0.15 * integration_config.total_budget

    def test_oscar_violation_within_theorem1_bound(self, comparison, integration_config):
        """The measured time-averaged violation respects Theorem 1 (loose bound)."""
        config = integration_config
        results = comparison.results_for("OSCAR")
        max_slot_cost = max(max(result.per_slot_costs()) for result in results)
        bound = theorem1_violation_bound(
            horizon=config.horizon,
            initial_queue=config.initial_queue,
            trade_off_v=config.trade_off_v,
            max_pairs=config.max_pairs,
            max_route_length=6,
            min_slot_success=0.3,
            drift_constant=drift_constant_bound(max_slot_cost, config.per_slot_budget),
        )
        for result in results:
            measured = (result.total_cost - config.total_budget) / config.horizon
            assert measured <= bound + 1e-9

    def test_proportional_fairness_reflected_in_distribution(self, comparison):
        """OSCAR's per-request success rates are no less fair than MF's."""
        from repro.analysis.metrics import jain_fairness_index

        oscar = jain_fairness_index(comparison.success_probability_pool("OSCAR"))
        mf = jain_fairness_index(comparison.success_probability_pool("MF"))
        assert oscar >= mf - 0.02


class TestCrossLayerConsistency:
    def test_recorded_utility_matches_success_probabilities(self, comparison):
        """For every slot, utility == Σ log(success probability of served pairs)."""
        for result in comparison.results_for("OSCAR"):
            for record in result.records:
                if record.num_served == 0:
                    continue
                expected = sum(math.log(p) for p in record.success_probabilities if p > 0)
                if any(p == 0 for p in record.success_probabilities):
                    assert record.utility == float("-inf")
                else:
                    assert record.utility == pytest.approx(expected, rel=1e-9)

    def test_realized_success_rate_tracks_analytic_rate(self, comparison):
        """Monte-Carlo realisations agree with the analytic probabilities in aggregate."""
        for name in comparison.policy_names:
            for result in comparison.results_for(name):
                analytic = result.average_success_rate()
                realized = result.realized_success_rate()
                assert realized == pytest.approx(analytic, abs=0.12)

    def test_cumulative_cost_equals_sum_of_slot_costs(self, comparison):
        for result in comparison.results_for("MA"):
            assert result.cumulative_costs()[-1] == pytest.approx(sum(result.per_slot_costs()))

    def test_delta_bound_positive_for_paper_parameters(self):
        assert delta_optimality_gap(2500.0, 5, 4, 0.5507) > 0

    def test_rerunning_a_policy_on_the_same_trace_is_deterministic(self, integration_config):
        graph = integration_config.build_graph(seed=1)
        trace = integration_config.build_trace(graph, seed=2)
        simulator = SlottedSimulator(
            graph=graph, trace=trace, total_budget=integration_config.total_budget
        )
        first = simulator.run(integration_config.make_oscar(), seed=5)
        second = simulator.run(integration_config.make_oscar(), seed=5)
        assert first.per_slot_costs() == second.per_slot_costs()
        assert first.average_utility() == pytest.approx(second.average_utility())
