"""Tests for repro.core.allocation (Algorithm 2 on real slot contexts)."""

import pytest

from repro.core.allocation import QubitAllocator
from repro.network.graph import ResourceSnapshot, edge_key
from repro.core.problem import SlotContext
from repro.solvers.relaxed import SLSQPSolver

from conftest import make_context


def single_request_selection(context):
    request = context.requests[0]
    return request, {request: context.routes_for(request)[0]}


class TestBuildProblem:
    def test_one_variable_per_route_edge(self, line_context):
        request, selection = single_request_selection(line_context)
        problem, keys = QubitAllocator.build_problem(
            line_context, selection, utility_weight=1.0, cost_weight=0.0
        )
        route = selection[request]
        assert problem.num_variables == route.hops
        assert keys == [(request, key) for key in route.edges]

    def test_node_constraints_match_snapshot(self, line_context):
        request, selection = single_request_selection(line_context)
        problem, _ = QubitAllocator.build_problem(
            line_context, selection, utility_weight=1.0, cost_weight=0.0
        )
        node_constraints = {c.name: c for c in problem.constraints if c.name.startswith("node:")}
        # Route 0-1-2-3 touches all four nodes.
        assert len(node_constraints) == 4
        assert node_constraints["node:0"].capacity == line_context.snapshot.available_qubits(0)

    def test_edge_constraints_match_snapshot(self, line_context):
        request, selection = single_request_selection(line_context)
        problem, _ = QubitAllocator.build_problem(
            line_context, selection, utility_weight=1.0, cost_weight=0.0
        )
        edge_constraints = [c for c in problem.constraints if c.name.startswith("edge:")]
        assert len(edge_constraints) == 3
        assert all(c.capacity == 6 for c in edge_constraints)

    def test_shared_edge_groups_both_requests(self, line_graph):
        context = make_context(line_graph, [(0, 2), (1, 3)])
        selection = {
            request: context.routes_for(request)[0] for request in context.requests
        }
        problem, keys = QubitAllocator.build_problem(
            context, selection, utility_weight=1.0, cost_weight=0.0
        )
        shared = [c for c in problem.constraints if c.name == f"edge:{edge_key(1, 2)}"]
        assert len(shared) == 1
        assert len(shared[0].members) == 2  # both requests traverse edge (1, 2)

    def test_budget_cap_constraint_added(self, line_context):
        request, selection = single_request_selection(line_context)
        problem, _ = QubitAllocator.build_problem(
            line_context, selection, utility_weight=1.0, cost_weight=0.0, budget_cap=7.0
        )
        names = [c.name for c in problem.constraints]
        assert "slot-budget" in names


class TestAllocate:
    def test_allocation_covers_every_route_edge(self, line_context):
        request, selection = single_request_selection(line_context)
        outcome = QubitAllocator().allocate(line_context, selection)
        route = selection[request]
        assert set(outcome.allocation.keys()) == {(request, key) for key in route.edges}
        assert all(value >= 1 for value in outcome.allocation.values())
        assert outcome.feasible

    def test_capacity_constraints_respected(self, line_context):
        request, selection = single_request_selection(line_context)
        outcome = QubitAllocator().allocate(line_context, selection)
        per_edge = outcome.edge_allocation(request)
        for key, value in per_edge.items():
            assert value <= line_context.snapshot.available_channels(key)

    def test_cost_matches_allocation(self, line_context):
        request, selection = single_request_selection(line_context)
        outcome = QubitAllocator().allocate(line_context, selection)
        assert outcome.cost == sum(outcome.allocation.values())

    def test_budget_cap_enforced(self, line_context):
        request, selection = single_request_selection(line_context)
        outcome = QubitAllocator().allocate(line_context, selection, budget_cap=4.0)
        assert outcome.feasible
        assert outcome.cost <= 4

    def test_infeasible_budget_cap_flagged(self, line_context):
        request, selection = single_request_selection(line_context)
        # The route has 3 edges; a cap of 2 cannot fit one channel per edge.
        outcome = QubitAllocator().allocate(line_context, selection, budget_cap=2.0)
        assert not outcome.feasible

    def test_cost_weight_reduces_spending(self, line_context):
        request, selection = single_request_selection(line_context)
        free = QubitAllocator().allocate(line_context, selection, utility_weight=1.0, cost_weight=0.0)
        priced = QubitAllocator().allocate(line_context, selection, utility_weight=1.0, cost_weight=0.5)
        assert priced.cost <= free.cost

    def test_empty_selection(self, line_context):
        outcome = QubitAllocator().allocate(line_context, {})
        assert outcome.allocation == {}
        assert outcome.feasible
        assert outcome.cost == 0

    def test_objective_matches_decision_recomputation(self, line_context, line_graph):
        """The reported objective equals V·Σ log P − q·cost recomputed from the allocation."""
        import math

        request, selection = single_request_selection(line_context)
        v, q = 100.0, 3.0
        outcome = QubitAllocator().allocate(line_context, selection, utility_weight=v, cost_weight=q)
        route = selection[request]
        log_p = sum(
            math.log(line_graph.link_success(key, outcome.allocation[(request, key)]))
            for key in route.edges
        )
        assert outcome.objective == pytest.approx(v * log_p - q * outcome.cost, rel=1e-9)

    def test_tight_snapshot_limits_allocation(self, line_graph):
        context = make_context(line_graph, [(0, 3)])
        tight = SlotContext(
            t=0,
            graph=line_graph,
            snapshot=ResourceSnapshot(
                qubits={node: 2 for node in line_graph.nodes},
                channels={key: 2 for key in line_graph.edges},
            ),
            requests=context.requests,
            candidate_routes=context.candidate_routes,
        )
        request, selection = single_request_selection(tight)
        outcome = QubitAllocator().allocate(tight, selection)
        assert outcome.feasible
        decision_usage = {}
        for (req, key), value in outcome.allocation.items():
            for endpoint in key:
                decision_usage[endpoint] = decision_usage.get(endpoint, 0) + value
        assert all(value <= 2 for value in decision_usage.values())

    def test_slsqp_solver_can_be_plugged_in(self, line_context):
        request, selection = single_request_selection(line_context)
        outcome = QubitAllocator(solver=SLSQPSolver()).allocate(line_context, selection)
        assert outcome.feasible
        assert all(value >= 1 for value in outcome.allocation.values())
