"""Tests for repro.simulation.physical — the physical-layer co-simulation.

The load-bearing guarantees:

* the vectorized batch engine and the per-pair reference engine are
  **bit-identical** under the same spawned RNG streams (outcomes, delivered
  fidelities and statistics), standalone and through full facade runs,
  serial and process-parallel;
* with the physical layer disabled (the default) the simulators consume
  exactly the historical random streams — nothing changes;
* the model threads end to end: ``ExperimentConfig`` → scenario builder →
  study axes → registry (fidelity-constrained wrapping) → records/stats.
"""

import json

import numpy as np
import pytest

from repro import api
from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import result_to_dict
from repro.network.routes import Route
from repro.simulation.physical import (
    PhysicalModel,
    PhysicalStats,
    ReferencePhysicalEngine,
    VectorizedPhysicalEngine,
    merge_physical_stats,
)
from repro.utils.rng import spawn_rngs
from repro.workload.budget import purification_rounds_within_budget


def make_items(rng, num_requests=12, max_hops=4, max_channels=6, fail_fraction=0.2):
    """Synthetic slot input: routes of random length, random allocations."""
    items = []
    for _ in range(num_requests):
        hops = int(rng.integers(1, max_hops + 1))
        route = Route.from_nodes(list(range(hops + 1)))
        allocation = {
            key: int(rng.integers(1, max_channels + 1)) for key in route.edges
        }
        links_ok = bool(rng.random() >= fail_fraction)
        items.append((route, allocation, links_ok))
    return items


def run_engine(engine, model_seed, slots=6):
    outcomes = []
    item_rng = np.random.default_rng(2_000)
    draw_rngs = spawn_rngs(model_seed, slots)
    for slot in range(slots):
        items = make_items(item_rng)
        outcomes.append(engine.realize_slot(items, seed=draw_rngs[slot]))
    return outcomes


class TestEngineBitIdentity:
    @pytest.mark.parametrize("swap_success", [1.0, 0.9])
    @pytest.mark.parametrize("purify_rounds", [0, 2])
    def test_vectorized_matches_reference(self, swap_success, purify_rounds):
        model = PhysicalModel(
            swap_success=swap_success,
            link_fidelity=0.96,
            purify_rounds=purify_rounds,
            fidelity_target=0.6,
        )
        reference = ReferencePhysicalEngine(model)
        vectorized = VectorizedPhysicalEngine(model)
        for ref, vec in zip(run_engine(reference, 7), run_engine(vectorized, 7)):
            assert ref == vec  # delivered, fidelities, fidelity_ok — exactly
        assert reference.stats == vectorized.stats

    def test_identity_survives_cutoff_pressure(self):
        model = PhysicalModel(
            swap_success=0.8,
            link_fidelity=0.9,
            memory_time=0.2,  # heavy decoherence: the cutoff bites
            cutoff_fidelity=0.55,
            purify_rounds=1,
        )
        reference = ReferencePhysicalEngine(model)
        vectorized = VectorizedPhysicalEngine(model)
        assert run_engine(reference, 11) == run_engine(vectorized, 11)
        assert reference.stats == vectorized.stats
        assert reference.stats.cutoff_discards > 0


class TestEngineSemantics:
    def test_purification_rounds_gated_by_channel_budget(self):
        model = PhysicalModel(purify_rounds=2, link_fidelity=0.9)
        engine = model.build_engine()
        assert engine.plan_for(1).rounds == 0
        assert engine.plan_for(2).rounds == 1
        assert engine.plan_for(3).rounds == 1
        assert engine.plan_for(4).rounds == 2
        assert engine.plan_for(9).rounds == 2  # capped at the request
        assert engine.plan_for(4).pairs_consumed == 4
        for channels in (1, 2, 3, 4, 9):
            assert engine.plan_for(channels).rounds == purification_rounds_within_budget(
                channels, 2
            )

    def test_no_purification_below_bbpssw_threshold(self):
        model = PhysicalModel(purify_rounds=3, link_fidelity=0.5)
        assert model.build_engine().plan_for(16).rounds == 0

    def test_cutoff_discards_everything_when_memory_is_gone(self):
        model = PhysicalModel(memory_time=0.001, cutoff_fidelity=0.5)
        engine = model.build_engine()
        route = Route.from_nodes([0, 1, 2])
        allocation = {key: 2 for key in route.edges}
        outcome = engine.realize_slot([(route, allocation, True)], seed=0)
        assert outcome.delivered == (False,)
        assert engine.stats.cutoff_discards == 1
        assert engine.stats.delivered == 0

    def test_link_failures_skip_the_chain_and_draw_nothing(self):
        model = PhysicalModel(swap_success=0.5, purify_rounds=2)
        engine = model.build_engine()
        route = Route.from_nodes([0, 1, 2, 3])
        allocation = {key: 4 for key in route.edges}
        rng = np.random.default_rng(5)
        state_before = rng.bit_generator.state
        outcome = engine.realize_slot([(route, allocation, False)], seed=rng)
        assert outcome.delivered == (False,)
        assert engine.stats.link_failures == 1
        assert engine.stats.attempts == 0
        assert rng.bit_generator.state == state_before

    def test_perfect_chain_delivers_chain_fidelity(self):
        model = PhysicalModel(
            swap_success=1.0, link_fidelity=0.98, dwell_fraction=0.0
        )
        engine = model.build_engine()
        route = Route.from_nodes([0, 1, 2, 3])
        allocation = {key: 1 for key in route.edges}
        outcome = engine.realize_slot([(route, allocation, True)], seed=1)
        from repro.physics.fidelity import fidelity_of_chain

        assert outcome.delivered == (True,)
        assert outcome.fidelities[0] == fidelity_of_chain([0.98] * 3)

    def test_fidelity_target_classifies_deliveries(self):
        model = PhysicalModel(
            swap_success=1.0, link_fidelity=0.98, dwell_fraction=0.0,
            fidelity_target=0.95,
        )
        engine = model.build_engine()
        short = Route.from_nodes([0, 1])          # F = 0.98 ≥ 0.95
        long = Route.from_nodes(list(range(6)))   # 5 hops: F < 0.95
        items = [
            (short, {key: 1 for key in short.edges}, True),
            (long, {key: 1 for key in long.edges}, True),
        ]
        outcome = engine.realize_slot(items, seed=2)
        assert outcome.delivered == (True, True)
        assert outcome.fidelity_ok == (True, False)
        assert engine.stats.delivered == 2
        assert engine.stats.fidelity_served == 1

    def test_stats_merge(self):
        a = PhysicalStats(requests=3, delivered=2, fidelity_sum=1.5)
        b = PhysicalStats(requests=4, delivered=1, fidelity_sum=0.7)
        merged = merge_physical_stats([a.to_dict(), None, b.to_dict()])
        assert merged["requests"] == 7
        assert merged["delivered"] == 3
        assert merged["fidelity_sum"] == pytest.approx(2.2)
        assert merge_physical_stats([None, "nope"]) is None

    def test_model_validation(self):
        with pytest.raises(ValueError):
            PhysicalModel(engine="warp")
        with pytest.raises(ValueError):
            PhysicalModel(swap_success=1.5)
        with pytest.raises(ValueError):
            PhysicalModel(purify_rounds=-1)


def scenario_with_physical(**overrides):
    return (
        api.Scenario.tiny()
        .with_policies("oscar", "mf")
        .with_physical(
            swap_success=0.95, purify_rounds=2, fidelity_target=0.6, **overrides
        )
    )


def record_payloads(record):
    return json.dumps(
        [
            {name: result_to_dict(result) for name, result in trial.items()}
            for trial in record.trials
        ],
        sort_keys=True,
    )


class TestFullRunIdentity:
    def test_engines_bit_identical_through_the_facade(self):
        vectorized = scenario_with_physical(engine="vectorized").run()
        reference = scenario_with_physical(engine="reference").run()
        assert record_payloads(vectorized) == record_payloads(reference)
        assert vectorized.physical_stats() == reference.physical_stats()

    def test_parallel_workers_bit_identical(self):
        base = scenario_with_physical().with_trials(2)
        serial = base.run(workers=1)
        parallel = base.run(workers=2)
        assert record_payloads(serial) == record_payloads(parallel)

    def test_study_units_bit_identical_to_session_trials(self):
        base = scenario_with_physical()
        study = api.Study("physical-identity").base(base).over(
            "budget.total_budget", [250.0]
        )
        serial = study.run(workers=1)
        split = api.Study("physical-identity").base(base).over(
            "budget.total_budget", [250.0]
        ).run(workers=2)
        assert record_payloads(serial.records[0]) == record_payloads(split.records[0])


class TestDisabledDefault:
    def test_disabled_run_has_no_physical_artifacts(self):
        record = api.Scenario.tiny().with_policies("mf").run()
        assert record.physical_stats() is None
        for trial in record.trials:
            for result in trial.values():
                assert "physical" not in result.diagnostics
                for slot in result.records:
                    assert slot.delivered_successes == ()
                    assert slot.fidelity_served == ()

    def test_disabled_summary_metrics_are_zero(self):
        record = api.Scenario.tiny().with_policies("mf").run()
        result = next(iter(record.trials[0].values()))
        assert result.has_physical_data is False
        assert result.delivered_success_rate() == 0.0
        assert result.mean_delivered_fidelity() == 0.0
        assert result.fidelity_served_rate() == 0.0

    def test_physical_metrics_absent_from_disabled_summaries(self):
        # Absence means "not simulated" — a disabled run must not print a
        # measured-zero fidelity, and legacy summary text stays unchanged.
        disabled = api.Scenario.tiny().with_policies("mf").run()
        result = next(iter(disabled.trials[0].values()))
        assert "mean_delivered_fidelity" not in result.summary()
        assert "mean_delivered_fidelity" not in disabled.summary()["MF"]
        enabled = scenario_with_physical().run()
        physical_result = next(iter(enabled.trials[0].values()))
        assert physical_result.has_physical_data is True
        assert "mean_delivered_fidelity" in physical_result.summary()
        assert "fidelity_served_rate" in enabled.summary()["OSCAR"]

    def test_series_reports_nan_for_unmeasured_physical_metrics(self):
        result = (
            api.Study("no-physical")
            .base(api.Scenario.tiny().with_policies("mf"))
            .over("budget.total_budget", [200.0])
            .run()
        )
        series = result.series("mean_delivered_fidelity")
        assert all(np.isnan(value) for value in series["MF"])

    def test_realize_false_with_physical_rejected(self):
        scenario = scenario_with_physical().with_realize(False)
        with pytest.raises(ValueError, match="realize"):
            scenario.run()


class TestRecordsAndStats:
    def test_run_record_aggregates_physical_stats(self):
        record = scenario_with_physical().run()
        stats = record.physical_stats()
        assert stats is not None
        assert stats["requests"] > 0
        assert stats["delivered"] <= stats["attempts"] <= stats["requests"]
        assert (
            stats["attempts"]
            == stats["delivered"]
            + stats["purify_failures"]
            + stats["cutoff_discards"]
            + stats["swap_failures"]
        )

    def test_study_aggregates_physical_stats(self):
        base = api.Scenario.tiny().with_policies("mf").with_physical()
        result = api.Study("physical-stats").base(base).over(
            "physical.swap_success", [0.9, 1.0]
        ).run()
        stats = result.physical_stats()
        assert stats is not None and stats["requests"] > 0

    def test_delivered_fields_roundtrip_through_json(self, tmp_path):
        record = scenario_with_physical().run()
        path = record.save(tmp_path / "record.json")
        loaded = api.RunRecord.load(path)
        for trial, loaded_trial in zip(record.trials, loaded.trials):
            for name in trial:
                original = trial[name]
                restored = loaded_trial[name]
                for a, b in zip(original.records, restored.records):
                    assert a.delivered_successes == b.delivered_successes
                    assert a.delivered_fidelities == b.delivered_fidelities
                    assert a.fidelity_served == b.fidelity_served
        # diagnostics (and therefore stats) are in-memory only, like kernel's
        assert loaded.physical_stats() is None

    def test_delivery_never_exceeds_realization(self):
        record = scenario_with_physical().run()
        for trial in record.trials:
            for result in trial.values():
                for slot in result.records:
                    for realized, delivered in zip(
                        slot.realized_successes, slot.delivered_successes
                    ):
                        assert delivered <= realized


class TestConfigThreading:
    def test_with_physical_maps_short_names(self):
        scenario = api.Scenario.tiny().with_physical(
            swap_success=0.9, memory_time=2.0, engine="reference"
        )
        config = scenario.config
        assert config.physical_enabled is True
        assert config.physical_swap_success == 0.9
        assert config.physical_memory_time == 2.0
        assert config.physical_engine == "reference"
        disabled = scenario.with_physical(False)
        assert disabled.config.physical_enabled is False
        assert disabled.config.physical_swap_success == 0.9  # knobs survive

    def test_with_physical_rejects_unknown_fields(self):
        with pytest.raises(TypeError, match="with_physical"):
            api.Scenario.tiny().with_physical(warp_factor=9)

    def test_physical_model_factory(self):
        config = ExperimentConfig.tiny()
        assert config.physical_model() is None
        enabled = config.with_overrides(
            physical_enabled=True, physical_swap_success=0.9,
            physical_purify_rounds=1,
        )
        model = enabled.physical_model()
        assert isinstance(model, PhysicalModel)
        assert model.swap_success == 0.9
        assert model.attempts_per_slot == config.attempts_per_slot

    def test_invalid_engine_rejected_by_config(self):
        with pytest.raises(ValueError, match="physical engine"):
            ExperimentConfig.tiny().with_overrides(physical_engine="warp")

    def test_physical_axis_group(self):
        from repro.api.study import resolve_config_path

        assert resolve_config_path("physical.swap_success") == "physical_swap_success"
        assert resolve_config_path("physical.physical_enabled") == "physical_enabled"
        with pytest.raises(ValueError):
            resolve_config_path("physical.total_budget")

    def test_scenario_json_roundtrip_keeps_physical_fields(self):
        scenario = scenario_with_physical()
        restored = api.Scenario.from_dict(scenario.to_dict())
        assert restored.config.physical_enabled is True
        assert restored.config.physical_swap_success == 0.95
        assert restored.config.physical_purify_rounds == 2


class TestFidelityConstrainedMode:
    def constrained_config(self):
        return ExperimentConfig.tiny().with_overrides(
            physical_enabled=True,
            physical_fidelity_target=0.6,
            physical_fidelity_constrained=True,
            physical_purify_rounds=1,
        )

    def test_registry_wraps_policies(self):
        from repro.core.fidelity import FidelityAwarePolicy

        policy = api.make_policy("oscar", self.constrained_config())
        assert isinstance(policy, FidelityAwarePolicy)
        assert "F>=0.6" in policy.name

    def test_no_wrap_without_target_or_flag(self):
        from repro.core.fidelity import FidelityAwarePolicy

        config = ExperimentConfig.tiny().with_overrides(physical_enabled=True)
        assert not isinstance(api.make_policy("oscar", config), FidelityAwarePolicy)
        config = ExperimentConfig.tiny().with_overrides(
            physical_enabled=True, physical_fidelity_target=0.6
        )
        assert not isinstance(api.make_policy("oscar", config), FidelityAwarePolicy)

    def test_wrapper_uses_physical_edge_bound(self):
        config = self.constrained_config()
        policy = api.make_policy("mf", config)
        bound = config.physical_model().edge_fidelity_bound()
        assert policy.fidelity_model.link_fidelity == bound

    def test_constrained_run_carries_wrapped_names(self):
        scenario = api.Scenario.from_config(
            self.constrained_config(), name="constrained"
        ).with_policies("mf")
        record = scenario.run()
        assert record.lineup == ["MF+F>=0.6"]
        # The announced lineup must match the result keys, so names taken
        # from it resolve (the probe runs against the scenario's config).
        assert list(scenario.lineup_names()) == record.lineup
        assert record.results_for(scenario.lineup_names()[0])
        # every fidelity-served delivery respects the target
        for trial in record.trials:
            for result in trial.values():
                for slot in result.records:
                    for ok, fidelity in zip(
                        slot.fidelity_served, slot.delivered_fidelities
                    ):
                        if ok:
                            assert fidelity >= 0.6


class TestMultiUserPhysical:
    def multiuser_scenario(self):
        return (
            api.Scenario.tiny()
            .with_user("lab", policy="oscar", total_budget=150.0)
            .with_user("startup", policy="mf", max_pairs=2)
            .with_physical(swap_success=0.9, purify_rounds=1)
        )

    def test_multiuser_runs_carry_delivery_and_stats(self):
        record = self.multiuser_scenario().run()
        stats = record.physical_stats()
        assert stats is not None and stats["requests"] > 0
        for trial in record.trials:
            for result in trial.values():
                assert "physical" in result.diagnostics
                assert any(slot.delivered_successes for slot in result.records)

    def test_multiuser_physical_is_reproducible(self):
        first = self.multiuser_scenario().run()
        second = self.multiuser_scenario().run()
        assert record_payloads(first) == record_payloads(second)
        assert first.physical_stats() == second.physical_stats()


class TestCliIntegration:
    def test_parameter_flags_imply_physical(self):
        from repro.cli import _config_from_args, build_parser

        arguments = build_parser().parse_args(
            ["compare", "--scale", "tiny", "--swap-p", "0.9",
             "--purify-rounds", "2", "--fidelity-target", "0.7",
             "--fidelity-constrained", "--decoherence-t2", "2.0"]
        )
        config = _config_from_args(arguments)
        assert config.physical_enabled is True
        assert config.physical_swap_success == 0.9
        assert config.physical_purify_rounds == 2
        assert config.physical_fidelity_target == 0.7
        assert config.physical_fidelity_constrained is True
        assert config.physical_memory_time == 2.0

    def test_no_flags_leave_physical_disabled(self):
        from repro.cli import _config_from_args, build_parser

        arguments = build_parser().parse_args(["compare", "--scale", "tiny"])
        assert _config_from_args(arguments).physical_enabled is False

    def test_fig9_registered(self):
        from repro.cli import FIGURE_RUNNERS

        assert "fig9" in FIGURE_RUNNERS

    def test_compare_progress_prints_health_line(self, capsys):
        from repro.cli import main

        code = main(
            ["compare", "--scale", "tiny", "--trials", "1",
             "--policies", "mf", "--physical", "--progress"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "[health]" in captured.err
        assert "physical" in captured.err
        assert "exhaustive" in captured.err

    def test_health_line_formats_both_fragments(self):
        from repro.cli import _render_health_line

        kernel = {
            "solves": 10, "binds": 5, "structure_compiles": 1,
            "cache_hits": 2, "memo_hits": 1, "pruned": 0,
            "dual_iterations": 40, "exhaustive_slots": 8, "gibbs_slots": 2,
        }
        physical = PhysicalStats(
            requests=6, attempts=5, delivered=4, fidelity_served=3,
            fidelity_sum=3.2, pairs_consumed=12,
        ).to_dict()
        line = _render_health_line({"kernel": kernel, "physical": physical})
        assert line.startswith("[health] kernel")
        assert "8 exhaustive / 2 gibbs slot(s)" in line
        assert "physical 4/5 delivered (mean F 0.800)" in line
        assert _render_health_line({}) is None
        assert _render_health_line({"kernel": kernel}).startswith("[health] kernel")
        assert _render_health_line({"physical": physical}).startswith(
            "[health] physical"
        )


class TestFig9:
    def test_fig9_runs_and_reports_both_panels(self):
        from repro.experiments import fig9_fidelity

        result = fig9_fidelity.run(
            ExperimentConfig.tiny(), budgets=[200.0, 300.0], trials=1
        )
        tables = result.format_tables()
        assert "Fig. 9(a) Mean delivered fidelity" in tables
        assert "Fig. 9(b) Fidelity-constrained service rate" in tables
        assert len(result.budgets) == 2
        for series in result.fidelity_throughput.values():
            assert all(0.0 <= value <= 1.0 for value in series)
        payload = result.to_dict()
        assert payload["figure"] == "fig9"
        assert payload["physical_stats"] is not None

    def test_fig9_default_merging(self):
        from repro.experiments.fig9_fidelity import fig9_config

        # Library path: an explicitly enabled config is taken as configured.
        config = ExperimentConfig.tiny().with_overrides(
            physical_enabled=True, physical_swap_success=0.5
        )
        assert fig9_config(config) == config
        # A disabled config gets the figure's full defaults switched on.
        defaulted = fig9_config(ExperimentConfig.tiny())
        assert defaulted.physical_enabled is True
        assert defaulted.physical_fidelity_constrained is True
        assert defaulted.physical_fidelity_target == 0.6
        # CLI path: pinned fields keep the user's value — even one that
        # coincides with a field default (--swap-p 1.0) — while the
        # remaining figure defaults still apply (a bare --physical must not
        # strip the fidelity target the figure is defined by).
        merged = fig9_config(
            ExperimentConfig.tiny().with_overrides(
                physical_enabled=True, physical_swap_success=1.0
            ),
            explicit={"physical_swap_success"},
        )
        assert merged.physical_swap_success == 1.0
        assert merged.physical_fidelity_target == 0.6
        assert merged.physical_purify_rounds == 2
        bare = fig9_config(
            ExperimentConfig.tiny().with_overrides(physical_enabled=True),
            explicit=set(),
        )
        assert bare.physical_fidelity_constrained is True

    def test_cli_fig9_explicit_flags_survive_the_merge(self):
        from repro.cli import _config_from_args, _explicit_physical_fields, build_parser
        from repro.experiments.fig9_fidelity import fig9_config

        arguments = build_parser().parse_args(
            ["figure", "fig9", "--scale", "tiny", "--swap-p", "1.0"]
        )
        config = fig9_config(
            _config_from_args(arguments),
            explicit=_explicit_physical_fields(arguments),
        )
        assert config.physical_swap_success == 1.0  # the user's 1.0, not 0.98
        assert config.physical_fidelity_target == 0.6
