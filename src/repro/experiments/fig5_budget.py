"""Figure 5 — impact of the qubit budget C.

The paper sweeps the total budget and reports (a) the average EC success
rate and (b) the average qubit usage of OSCAR, MA and MF.  Findings to
reproduce: every method improves with a larger budget, OSCAR dominates at
every budget level, and the gap to the baselines *narrows* as the budget
grows (resources stop being the bottleneck).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro import api
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import ComparisonResult

#: Budget sweep used when reproducing the paper-scale experiment.
PAPER_BUDGETS = (3000.0, 4000.0, 5000.0, 6000.0, 7000.0, 8000.0)


@dataclass
class Figure5Result:
    """Average success rate and qubit usage as a function of the budget."""

    config: ExperimentConfig
    budgets: List[float]
    success_rate: Dict[str, List[float]]
    total_cost: Dict[str, List[float]]
    comparisons: List[ComparisonResult] = field(default_factory=list, repr=False)
    study: Optional["api.StudyResult"] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable payload built on the StudyResult schema."""
        return {
            "figure": "fig5",
            "config": dataclasses.asdict(self.config),
            "budgets": list(self.budgets),
            "success_rate": {k: list(v) for k, v in self.success_rate.items()},
            "total_cost": {k: list(v) for k, v in self.total_cost.items()},
            "study": self.study.to_dict() if self.study is not None else None,
        }

    def oscar_advantage(self, baseline: str = "MF") -> List[float]:
        """OSCAR-minus-baseline success-rate gap at each budget (should shrink)."""
        return [
            oscar - other
            for oscar, other in zip(self.success_rate["OSCAR"], self.success_rate[baseline])
        ]

    def format_tables(self) -> str:
        """Both panels of Fig. 5 as plain-text tables."""
        return "\n\n".join(
            [
                format_series_table(
                    "budget C",
                    self.budgets,
                    self.success_rate,
                    title="Fig. 5(a) Average EC success rate vs. budget",
                ),
                format_series_table(
                    "budget C",
                    self.budgets,
                    self.total_cost,
                    title="Fig. 5(b) Average total qubit usage vs. budget",
                ),
            ]
        )


def sweep_budgets_for(config: ExperimentConfig) -> List[float]:
    """The budget sweep, scaled to the configuration's default budget.

    At paper scale this is 3000…8000; for the scaled-down configurations the
    same relative range (0.6x to 1.6x the default budget) is used.
    """
    factors = [b / 5000.0 for b in PAPER_BUDGETS]
    return [round(config.total_budget * factor, 2) for factor in factors]


def build_study(
    config: ExperimentConfig, budgets: Sequence[float], name: str = "fig5"
) -> "api.Study":
    """The declarative form of the Fig. 5 sweep (one budget axis)."""
    return (
        api.Study(name)
        .base(api.Scenario.from_config(config, name=name))
        .over("budget.total_budget", [float(b) for b in budgets], label="C")
    )


def run(
    config: Optional[ExperimentConfig] = None,
    budgets: Optional[Sequence[float]] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    workers: int = 1,
    store: Union[None, str, "api.ResultStore"] = None,
) -> Figure5Result:
    """Run the budget sweep and collect per-policy success rates and usage."""
    config = (config or ExperimentConfig.paper()).with_run_overrides(trials, seed)
    budgets = list(budgets) if budgets is not None else sweep_budgets_for(config)

    result = build_study(config, budgets).run(workers=workers, store=store)
    return Figure5Result(
        config=config,
        budgets=[float(b) for b in budgets],
        success_rate=result.series("average_success_rate"),
        total_cost=result.series("total_cost"),
        comparisons=result.to_comparisons(),
        study=result,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run(ExperimentConfig.small(), budgets=None, trials=1)
    print(result.format_tables())


if __name__ == "__main__":  # pragma: no cover
    main()
