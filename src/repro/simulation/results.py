"""Per-slot records and whole-run results of a slotted simulation.

Everything the paper's figures need is derivable from these records:
per-slot utility (Fig. 3a), per-request EC success probabilities (Figs. 3b,
4, 5a, 6a), qubit usage (Figs. 3c, 5b, 6b, 7, 8) and the policy's virtual
queue / spending diagnostics (Figs. 7, 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SlotRecord:
    """Metrics of one simulated slot under one policy."""

    t: int
    num_requests: int
    num_served: int
    cost: int
    utility: float
    success_probabilities: Tuple[float, ...]
    realized_successes: Tuple[bool, ...] = ()
    realized_fidelities: Tuple[float, ...] = ()
    queue_length: Optional[float] = None
    # Physical-layer delivery outcomes (empty unless the run simulated the
    # physical chain — see :mod:`repro.simulation.physical`).  ``delivered``
    # marks requests whose end-to-end pair actually materialised (links AND
    # purification AND cutoff AND swaps); ``delivered_fidelities`` their
    # delivered fidelity (0 for failures); ``fidelity_served`` whether the
    # delivery also met the configured fidelity target.
    delivered_successes: Tuple[bool, ...] = ()
    delivered_fidelities: Tuple[float, ...] = ()
    fidelity_served: Tuple[bool, ...] = ()
    # Wall-clock slot boundaries stamped from the simulator's SlotClock
    # (``slot_end_s`` includes the guard time); ``None`` on records produced
    # before timestamps existed.
    slot_start_s: Optional[float] = None
    slot_end_s: Optional[float] = None

    @property
    def num_unserved(self) -> int:
        """Requests that were not served in this slot."""
        return self.num_requests - self.num_served

    @property
    def mean_success_probability(self) -> float:
        """Mean analytic EC success probability over this slot's requests.

        Unserved requests count as probability 0 so that dropping requests
        is never "free" in the reported success rate.
        """
        if self.num_requests == 0:
            return 0.0
        return float(sum(self.success_probabilities)) / self.num_requests

    @property
    def realized_success_rate(self) -> float:
        """Fraction of this slot's requests whose EC actually materialised."""
        if self.num_requests == 0:
            return 0.0
        return float(sum(self.realized_successes)) / self.num_requests

    @property
    def delivered_success_rate(self) -> float:
        """Fraction of this slot's requests whose end-to-end pair was delivered."""
        if self.num_requests == 0:
            return 0.0
        return float(sum(self.delivered_successes)) / self.num_requests


@dataclass(frozen=True)
class SimulationResult:
    """Complete result of one policy run over one workload trace."""

    policy_name: str
    horizon: int
    total_budget: float
    records: Tuple[SlotRecord, ...]
    diagnostics: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Per-slot series
    # ------------------------------------------------------------------ #
    def per_slot_costs(self) -> List[int]:
        """Cost ``c_t`` of every slot."""
        return [record.cost for record in self.records]

    def cumulative_costs(self) -> List[float]:
        """Cumulative qubit usage after each slot (Fig. 3c)."""
        return list(np.cumsum([record.cost for record in self.records], dtype=float))

    def per_slot_utilities(self) -> List[float]:
        """Utility ``u(r_t, N_t)`` of every slot."""
        return [record.utility for record in self.records]

    def running_average_utility(self) -> List[float]:
        """Running average of per-slot utility up to each slot (Fig. 3a)."""
        utilities = np.asarray(
            [record.utility if math.isfinite(record.utility) else np.nan for record in self.records]
        )
        sums = np.nancumsum(utilities)
        counts = np.arange(1, len(utilities) + 1)
        return list(sums / counts)

    def running_average_success_rate(self) -> List[float]:
        """Running average of the mean EC success probability (Fig. 3b)."""
        rates = np.asarray([record.mean_success_probability for record in self.records])
        return list(np.cumsum(rates) / np.arange(1, len(rates) + 1))

    def queue_lengths(self) -> List[Optional[float]]:
        """The policy's virtual-queue length at each slot (None for baselines)."""
        return [record.queue_length for record in self.records]

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_cost(self) -> float:
        """Total qubits spent over the run."""
        return float(sum(record.cost for record in self.records))

    @property
    def budget_violation(self) -> float:
        """``max(0, total_cost − C)``."""
        return max(0.0, self.total_cost - self.total_budget)

    @property
    def budget_utilisation(self) -> float:
        """Fraction of the budget consumed (can exceed 1)."""
        if self.total_budget == 0:
            return 0.0 if self.total_cost == 0 else float("inf")
        return self.total_cost / self.total_budget

    def average_utility(self) -> float:
        """Mean per-slot utility over the run (finite slots only)."""
        utilities = [r.utility for r in self.records if math.isfinite(r.utility)]
        if not utilities:
            return float("-inf")
        return float(np.mean(utilities))

    def average_success_rate(self) -> float:
        """Mean analytic EC success probability over every request of the run."""
        probabilities = self.all_success_probabilities(include_unserved=True)
        if not probabilities:
            return 0.0
        return float(np.mean(probabilities))

    def realized_success_rate(self) -> float:
        """Fraction of all requests whose EC actually materialised."""
        total_requests = sum(record.num_requests for record in self.records)
        if total_requests == 0:
            return 0.0
        total_successes = sum(sum(record.realized_successes) for record in self.records)
        return total_successes / total_requests

    def all_success_probabilities(self, include_unserved: bool = True) -> List[float]:
        """Per-request analytic success probabilities across the run (Fig. 4).

        When ``include_unserved`` is true, every unserved request contributes
        a zero.
        """
        values: List[float] = []
        for record in self.records:
            values.extend(record.success_probabilities)
            if include_unserved:
                values.extend([0.0] * record.num_unserved)
        return values

    def served_fraction(self) -> float:
        """Fraction of requests that received a route and allocation."""
        total = sum(record.num_requests for record in self.records)
        if total == 0:
            return 1.0
        served = sum(record.num_served for record in self.records)
        return served / total

    # ------------------------------------------------------------------ #
    # Physical-layer delivery metrics (see repro.simulation.physical)
    # ------------------------------------------------------------------ #
    @property
    def has_physical_data(self) -> bool:
        """Whether this run simulated the physical delivery chain.

        True when any slot carries delivery outcomes; summaries only report
        the physical metrics in that case, so a disabled run never prints a
        misleading "measured zero" fidelity.
        """
        return any(record.delivered_successes for record in self.records)

    def delivered_success_rate(self) -> float:
        """Fraction of all requests whose end-to-end pair was physically delivered."""
        total_requests = sum(record.num_requests for record in self.records)
        if total_requests == 0:
            return 0.0
        total = sum(sum(record.delivered_successes) for record in self.records)
        return total / total_requests

    def fidelity_served_rate(self) -> float:
        """Fraction of all requests delivered at or above the fidelity target.

        Equals :meth:`delivered_success_rate` when no target is configured
        (every delivery then counts as fidelity-served).
        """
        total_requests = sum(record.num_requests for record in self.records)
        if total_requests == 0:
            return 0.0
        total = sum(sum(record.fidelity_served) for record in self.records)
        return total / total_requests

    def all_delivered_fidelities(self, delivered_only: bool = True) -> List[float]:
        """Per-request delivered fidelities pooled over the run (Fig. 9).

        ``delivered_only`` keeps only materialised deliveries; otherwise
        failed requests contribute their recorded 0.
        """
        values: List[float] = []
        for record in self.records:
            for delivered, fidelity in zip(
                record.delivered_successes, record.delivered_fidelities
            ):
                if delivered or not delivered_only:
                    values.append(fidelity)
        return values

    def mean_delivered_fidelity(self) -> float:
        """Mean fidelity over delivered requests (0 when nothing was delivered)."""
        fidelities = self.all_delivered_fidelities(delivered_only=True)
        if not fidelities:
            return 0.0
        return float(np.mean(fidelities))

    def wall_time_s(self) -> Optional[float]:
        """Simulated wall-clock span covered by this run's records, in seconds.

        Derived from the :class:`SlotClock` stamps
        (``slot_start_s``/``slot_end_s``): the span from the earliest
        stamped slot start to the latest stamped slot end.  ``None`` when no
        record carries stamps — legacy payloads predating the timestamps
        round-trip through here safely.
        """
        starts = [r.slot_start_s for r in self.records if r.slot_start_s is not None]
        ends = [r.slot_end_s for r in self.records if r.slot_end_s is not None]
        if not starts or not ends:
            return None
        return float(max(ends) - min(starts))

    def summary(self) -> Dict[str, float]:
        """A flat summary dictionary used by the reporting layer.

        The physical-layer metrics appear only when the run simulated the
        physical chain — their absence means "not simulated", which is a
        different statement than a measured zero.
        """
        summary = {
            "average_utility": self.average_utility(),
            "average_success_rate": self.average_success_rate(),
            "realized_success_rate": self.realized_success_rate(),
            "total_cost": self.total_cost,
            "budget_utilisation": self.budget_utilisation,
            "budget_violation": self.budget_violation,
            "served_fraction": self.served_fraction(),
        }
        if self.has_physical_data:
            summary["delivered_success_rate"] = self.delivered_success_rate()
            summary["mean_delivered_fidelity"] = self.mean_delivered_fidelity()
            summary["fidelity_served_rate"] = self.fidelity_served_rate()
        return summary
