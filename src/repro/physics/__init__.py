"""A small quantum-information substrate.

The routing layer of the paper works with analytic success probabilities,
but the underlying operations it abstracts — Bell-pair generation across a
lossy fibre, entanglement swapping at repeaters, teleportation of data
qubits — are implemented here from scratch so that the library can also run
attempt-level, protocol-level simulations (used by the link-layer
Monte-Carlo validator and by the examples).

* :mod:`repro.physics.qubit` — qubits, Bell states and entangled pairs.
* :mod:`repro.physics.entanglement` — attempt-level Bell-pair generation.
* :mod:`repro.physics.swapping` — entanglement swapping and repeater chains.
* :mod:`repro.physics.teleportation` — state-vector quantum teleportation.
* :mod:`repro.physics.decoherence` — exponential fidelity decay over time.
* :mod:`repro.physics.fidelity` — Werner-state fidelity algebra.
"""

from repro.physics.qubit import BellState, Qubit, BellPair
from repro.physics.entanglement import (
    EntanglementGenerator,
    GenerationResult,
    sample_successes,
)
from repro.physics.swapping import (
    SwapResult,
    entanglement_swap,
    sample_swap_successes,
    swap_chain,
)
from repro.physics.teleportation import TeleportationOutcome, teleport
from repro.physics.decoherence import DecoherenceModel
from repro.physics.fidelity import (
    fidelity_after_swap,
    fidelity_of_chain,
    werner_parameter,
    werner_fidelity,
)
from repro.physics.purification import (
    PurificationOutcome,
    SampledPurification,
    purification_ladder,
    purification_success_probability,
    purified_fidelity,
    purify_pair,
    recurrence_purification,
    rounds_to_reach,
    sample_purification,
)

__all__ = [
    "BellState",
    "Qubit",
    "BellPair",
    "EntanglementGenerator",
    "GenerationResult",
    "sample_successes",
    "SwapResult",
    "entanglement_swap",
    "sample_swap_successes",
    "swap_chain",
    "TeleportationOutcome",
    "teleport",
    "DecoherenceModel",
    "fidelity_after_swap",
    "fidelity_of_chain",
    "werner_parameter",
    "werner_fidelity",
    "PurificationOutcome",
    "SampledPurification",
    "purification_ladder",
    "purification_success_probability",
    "purified_fidelity",
    "purify_pair",
    "recurrence_purification",
    "rounds_to_reach",
    "sample_purification",
]
