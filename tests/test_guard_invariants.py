"""Unit tests of the runtime invariant guard (repro.guard.invariants)."""

from __future__ import annotations

import math
import pickle

import pytest

from repro.guard import hooks as guard_hooks
from repro.guard.invariants import (
    FORCE_BREACH_ENV_VAR,
    GUARD_ENV_VAR,
    GUARD_LEVELS,
    InvariantGuard,
    InvariantViolation,
    effective_guard_level,
    forced_breach_slot,
    merge_guard_stats,
)


# --------------------------------------------------------------------- #
# Levels and environment overrides
# --------------------------------------------------------------------- #
def test_levels_tuple():
    assert GUARD_LEVELS == ("off", "cheap", "strict")


def test_effective_level_without_env(monkeypatch):
    monkeypatch.delenv(GUARD_ENV_VAR, raising=False)
    assert effective_guard_level("off") == "off"
    assert effective_guard_level("cheap") == "cheap"
    assert effective_guard_level("strict") == "strict"


def test_env_override_wins(monkeypatch):
    monkeypatch.setenv(GUARD_ENV_VAR, "strict")
    assert effective_guard_level("off") == "strict"
    assert effective_guard_level("cheap") == "strict"


def test_invalid_env_level_raises(monkeypatch):
    monkeypatch.setenv(GUARD_ENV_VAR, "paranoid")
    with pytest.raises(ValueError, match="paranoid"):
        effective_guard_level("off")


def test_build_off_returns_none(monkeypatch):
    monkeypatch.delenv(GUARD_ENV_VAR, raising=False)
    assert InvariantGuard.build("off") is None


def test_build_rejects_unknown_level(monkeypatch):
    monkeypatch.delenv(GUARD_ENV_VAR, raising=False)
    with pytest.raises(ValueError, match="nope"):
        InvariantGuard.build("nope")


def test_ctor_rejects_off():
    with pytest.raises(ValueError):
        InvariantGuard("off")


def test_forced_breach_slot_env(monkeypatch):
    monkeypatch.delenv(FORCE_BREACH_ENV_VAR, raising=False)
    assert forced_breach_slot() is None
    monkeypatch.setenv(FORCE_BREACH_ENV_VAR, "7")
    assert forced_breach_slot() == 7
    guard = InvariantGuard.build("cheap")
    assert guard is not None and guard.force_slot == 7


# --------------------------------------------------------------------- #
# The violation type
# --------------------------------------------------------------------- #
def test_violation_message_format():
    error = InvariantViolation("queue-finite", "core", "queue is nan", slot=3)
    assert str(error) == "[core:queue-finite] (slot 3) queue is nan"
    assert error.check == "queue-finite"
    assert error.layer == "core"
    assert error.slot == 3


def test_violation_pickles_with_bundle_path():
    error = InvariantViolation("x", "core", "boom", slot=1, details={"a": 1})
    error.bundle_path = "/tmp/bundle.json"
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, InvariantViolation)
    assert clone.check == "x" and clone.slot == 1
    assert clone.bundle_path == "/tmp/bundle.json"


def test_verdict_excludes_bundle_path():
    error = InvariantViolation("x", "core", "boom", slot=1)
    error.details["bundle_path"] = "/somewhere.json"
    assert "bundle_path" not in error.verdict()["details"]


def test_matches_compares_identity():
    error = InvariantViolation("x", "core", "boom", slot=1)
    assert error.matches(error.verdict())
    other = InvariantViolation("x", "core", "boom", slot=2)
    assert not other.matches(error.verdict())


# --------------------------------------------------------------------- #
# Forced synthetic breach
# --------------------------------------------------------------------- #
def test_forced_breach_fires_once_at_or_after_slot():
    guard = InvariantGuard("cheap", force_slot=2)
    guard.begin_slot(0)
    guard.begin_slot(1)
    with pytest.raises(InvariantViolation) as info:
        guard.begin_slot(2)
    assert info.value.check == "forced-breach"
    assert info.value.slot == 2
    # Fires once; later slots pass.
    guard.begin_slot(3)
    assert guard.counters["breaches"] == 1


# --------------------------------------------------------------------- #
# Individual check packs (synthetic inputs)
# --------------------------------------------------------------------- #
def test_check_objective_rejects_nan_and_plus_inf():
    guard = InvariantGuard("cheap")
    guard.check_objective(-math.inf)  # legitimate log(0) utility
    guard.check_objective(1.5)
    with pytest.raises(InvariantViolation, match="objective-finite"):
        guard.check_objective(math.nan)
    with pytest.raises(InvariantViolation, match="objective-finite"):
        guard.check_objective(math.inf)


def test_queue_history_rejects_negative_and_nonfinite():
    guard = InvariantGuard("cheap")
    guard.check_queue_history([0.0, 1.0, 2.5])
    with pytest.raises(InvariantViolation, match="queue-history"):
        guard.check_queue_history([0.0, -0.5])
    with pytest.raises(InvariantViolation, match="queue-history"):
        guard.check_queue_history([0.0, math.nan])


def test_queue_conservation_replay_strict():
    guard = InvariantGuard("strict")
    budget = 2.0
    costs = [3.0, 1.0, 0.0]
    history = [10.0]
    for cost in costs:
        history.append(max(0.0, history[-1] + cost - budget))
    guard.check_queue_history(history, per_slot_budget=budget, costs=costs)
    # Perturb one recorded entry: the recursion replay must catch it.
    history[2] += 0.5
    with pytest.raises(InvariantViolation, match="queue-conservation"):
        guard.check_queue_history(history, per_slot_budget=budget, costs=costs)


def test_queue_conservation_skipped_when_cheap():
    guard = InvariantGuard("cheap")
    # Same perturbed history passes at the cheap level (only sign/NaN checks).
    guard.check_queue_history([10.0, 99.0], per_slot_budget=2.0, costs=[3.0])


def test_fidelity_range():
    guard = InvariantGuard("cheap")
    guard.check_fidelities([0.0, 0.5, 1.0])
    with pytest.raises(InvariantViolation, match="fidelity-range"):
        guard.check_fidelities([1.2])
    with pytest.raises(InvariantViolation, match="fidelity-range"):
        guard.check_fidelities([math.nan])


def test_decoherence_monotone_strict():
    class RaisingModel:
        dwell_time = 0.1

        def decohered_fidelity(self, value):
            return min(1.0, value * 1.5)  # pathological: decay raises fidelity

    guard = InvariantGuard("strict")
    with pytest.raises(InvariantViolation, match="decoherence-monotone"):
        guard.check_fidelities([0.6], model=RaisingModel())


def test_physical_stats_conservation():
    guard = InvariantGuard("cheap")
    good = {
        "requests": 10,
        "attempts": 8,
        "link_failures": 2,
        "purify_failures": 1,
        "cutoff_discards": 0,
        "swap_failures": 3,
        "delivered": 4,
        "fidelity_served": 2,
        "fidelity_sum": 3.1,
    }
    guard.check_physical_stats(good)
    guard.check_physical_stats(None)  # physical layer disabled: no-op
    bad = dict(good, link_failures=3)
    with pytest.raises(InvariantViolation, match="physical-request-conservation"):
        guard.check_physical_stats(bad)
    bad = dict(good, delivered=5)
    with pytest.raises(InvariantViolation, match="physical-attempt-conservation"):
        guard.check_physical_stats(bad)
    bad = dict(good, fidelity_served=5)
    with pytest.raises(InvariantViolation, match="physical-fidelity-subset"):
        guard.check_physical_stats(bad)
    bad = dict(good, fidelity_sum=4.5)
    with pytest.raises(InvariantViolation, match="physical-fidelity-sum"):
        guard.check_physical_stats(bad)


def test_serving_totals_conservation():
    guard = InvariantGuard("cheap")
    good = {
        "sessions_arrived": 5,
        "sessions_admitted": 3,
        "sessions_rejected": 2,
        "sessions_departed": 1,
        "requests_served": 7,
        "requests_realized": 6,
    }
    guard.check_serving_totals(good)
    with pytest.raises(InvariantViolation, match="serving-admission-conservation"):
        guard.check_serving_totals(dict(good, sessions_rejected=1))
    with pytest.raises(InvariantViolation, match="serving-departure-bound"):
        guard.check_serving_totals(dict(good, sessions_departed=4))
    with pytest.raises(InvariantViolation, match="serving-realization-bound"):
        guard.check_serving_totals(dict(good, requests_realized=9))


class _StubState:
    def __init__(self, down):
        self.down_elements = down

    def __bool__(self):
        return True


class _StubSchedule:
    """Two elements, element 0 down at slot 1 (of 3)."""

    num_elements = 2

    def state_at(self, t):
        return _StubState(1 if t == 1 else 0)

    def availability_at(self, t):
        return 0.5 if t == 1 else 1.0


def test_fault_stats_against_schedule():
    guard = InvariantGuard("strict")
    stats = {"slots": 3, "element_slots": 6, "down_element_slots": 1}
    guard.check_fault_stats(_StubSchedule(), stats)
    with pytest.raises(InvariantViolation, match="fault-element-slots"):
        guard.check_fault_stats(_StubSchedule(), dict(stats, element_slots=5))
    with pytest.raises(InvariantViolation, match="fault-schedule-recount"):
        guard.check_fault_stats(_StubSchedule(), dict(stats, down_element_slots=2))


def test_counters_accumulate_per_layer():
    guard = InvariantGuard("cheap")
    guard.begin_slot(0)
    guard.check_objective(0.0)
    guard.check_fidelities([0.5])
    stats = guard.stats()
    assert stats["slots"] == 1
    assert stats["checks_kernel"] == 1
    assert stats["checks_physical"] == 1
    assert stats["checks"] == stats["checks_kernel"] + stats["checks_physical"]
    assert stats["breaches"] == 0


def test_merge_guard_stats():
    merged = merge_guard_stats([{"checks": 2, "slots": 1}, {"checks": 3, "slots": 4}])
    assert merged == {"checks": 5, "slots": 5}
    assert merge_guard_stats([None, "x"]) is None


# --------------------------------------------------------------------- #
# Ambient hooks
# --------------------------------------------------------------------- #
def test_hooks_activate_and_restore():
    assert guard_hooks.get() is None
    outer = InvariantGuard("cheap")
    inner = InvariantGuard("strict")
    with guard_hooks.activate(outer) as active:
        assert active is outer and guard_hooks.get() is outer
        with guard_hooks.activate(inner):
            assert guard_hooks.get() is inner
        assert guard_hooks.get() is outer
    assert guard_hooks.get() is None


def test_hooks_accept_none():
    with guard_hooks.activate(None):
        assert guard_hooks.get() is None
