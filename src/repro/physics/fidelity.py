"""Werner-state fidelity algebra.

Entanglement links produced over noisy channels are well modelled by Werner
states: a perfect Bell pair mixed with white noise.  A Werner state of
fidelity ``F`` has Werner parameter ``w = (4F − 1) / 3``; entanglement
swapping two Werner links multiplies their Werner parameters, which gives
the standard chain-fidelity formula used by fidelity-aware routing papers
(the paper cites [22], [24] for this line of work and notes the constraint
can be added per slot — see :mod:`repro.core.fidelity`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.utils.validation import check_in_range

#: Fidelity of a maximally mixed two-qubit state (the "useless" floor).
MIXED_STATE_FIDELITY = 0.25


def werner_parameter(fidelity: float) -> float:
    """Werner parameter ``w = (4F − 1)/3`` of a Werner state with fidelity ``F``."""
    check_in_range(fidelity, 0.0, 1.0, "fidelity")
    return (4.0 * fidelity - 1.0) / 3.0


def werner_fidelity(parameter: float) -> float:
    """Fidelity ``F = (3w + 1)/4`` of a Werner state with parameter ``w``."""
    check_in_range(parameter, -1.0 / 3.0, 1.0, "parameter")
    return (3.0 * parameter + 1.0) / 4.0


def fidelity_after_swap(fidelity_a: float, fidelity_b: float) -> float:
    """Fidelity of the pair produced by swapping two Werner pairs.

    The Werner parameters multiply: ``w_out = w_a · w_b``.
    """
    w = werner_parameter(fidelity_a) * werner_parameter(fidelity_b)
    return werner_fidelity(w)


def fidelity_of_chain(link_fidelities: Iterable[float]) -> float:
    """End-to-end fidelity of a repeater chain of Werner links.

    Defined as the left fold of :func:`fidelity_after_swap`: swapping is
    associative in the Werner-parameter picture, so this equals the closed
    form ``F = (3 Π w_i + 1)/4``.  Implementing the chain as iterated swaps
    keeps a single source of truth for every consumer — the analytic route
    model in :mod:`repro.core.fidelity` and the physical delivery engines in
    :mod:`repro.simulation.physical` compose fidelities through exactly the
    same operation.  An empty chain is meaningless and raises
    ``ValueError``.
    """
    fidelities = [float(f) for f in link_fidelities]
    if not fidelities:
        raise ValueError("a chain needs at least one link")
    current = fidelities[0]
    check_in_range(current, 0.0, 1.0, "fidelity")
    for next_fidelity in fidelities[1:]:
        current = fidelity_after_swap(current, next_fidelity)
    return current


def max_chain_length_for_target(link_fidelity: float, target: float) -> int:
    """Longest chain of identical links whose end-to-end fidelity stays >= ``target``.

    Returns 0 if even a single link misses the target.  Used by the
    fidelity-aware candidate filtering in :mod:`repro.core.fidelity`.
    """
    check_in_range(link_fidelity, 0.0, 1.0, "link_fidelity")
    check_in_range(target, 0.0, 1.0, "target")
    if target <= MIXED_STATE_FIDELITY:
        # Any chain of valid Werner links beats the mixed-state floor only in
        # the limit, but the target itself is trivially low: no finite limit.
        return 10**9
    length = 0
    fidelities: list = []
    while length < 10_000:
        fidelities.append(link_fidelity)
        if fidelity_of_chain(fidelities) < target:
            return length
        length += 1
    return length


def depolarising_link_fidelity(ideal_fidelity: float, error_probability: float) -> float:
    """Fidelity of a link after a depolarising error of probability ``p``.

    With probability ``p`` the pair is replaced by the maximally mixed
    state: ``F' = (1 − p)·F + p·1/4``.
    """
    check_in_range(ideal_fidelity, 0.0, 1.0, "ideal_fidelity")
    check_in_range(error_probability, 0.0, 1.0, "error_probability")
    return (1.0 - error_probability) * ideal_fidelity + error_probability * MIXED_STATE_FIDELITY
