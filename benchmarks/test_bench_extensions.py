"""Benchmark: the reproduction's extensions beyond the paper's figures.

* **Offline oracle vs OSCAR** — the empirical counterpart of Theorem 2: the
  oracle (which knows the whole workload) respects the budget and its
  utility upper-bounds what a budget-respecting policy can achieve, while
  OSCAR lands close behind without any future knowledge.
* **Multi-tenant QDN** — several users sharing one network, each running
  OSCAR; checks the provider-level accounting invariants at benchmark scale.
"""

from __future__ import annotations

import pytest

from repro.core.multiuser import MultiUserSimulator, QDNUser
from repro.core.offline import OfflineOraclePolicy
from repro.core.per_slot import PerSlotSolver
from repro.simulation.engine import SlottedSimulator
from repro.workload.requests import UniformRequestProcess


@pytest.mark.benchmark(group="extensions")
def test_offline_oracle_vs_oscar(benchmark, figure_config):
    config = figure_config
    graph = config.build_graph(seed=41)
    trace = config.build_trace(graph, seed=42)

    def run():
        oracle = OfflineOraclePolicy.for_trace(
            graph,
            trace,
            total_budget=config.total_budget,
            solver=PerSlotSolver(gibbs_iterations=15),
            seed=43,
        )
        simulator = SlottedSimulator(
            graph=graph, trace=trace, total_budget=config.total_budget, realize=False
        )
        oracle_result = simulator.run(oracle, seed=44)
        oscar_result = simulator.run(config.make_oscar(), seed=44)
        mf_result = simulator.run(config.make_myopic_fixed(), seed=44)
        return oracle_result, oscar_result, mf_result

    oracle_result, oscar_result, mf_result = benchmark.pedantic(run, rounds=1, iterations=1)

    # The oracle respects the budget and beats the strictly-budgeted baseline.
    assert oracle_result.total_cost <= config.total_budget + 1e-9
    assert oracle_result.average_utility() >= mf_result.average_utility() - 0.02
    # OSCAR (no future knowledge) lands within a modest gap of the oracle.
    assert oscar_result.average_utility() >= oracle_result.average_utility() - 0.25

    print()
    print(
        f"oracle utility={oracle_result.average_utility():.4f} cost={oracle_result.total_cost:.0f} | "
        f"OSCAR utility={oscar_result.average_utility():.4f} cost={oscar_result.total_cost:.0f} | "
        f"MF utility={mf_result.average_utility():.4f} cost={mf_result.total_cost:.0f}"
    )


@pytest.mark.benchmark(group="extensions")
def test_multi_tenant_sharing(benchmark, figure_config):
    config = figure_config
    graph = config.build_graph(seed=51)
    horizon = config.horizon
    per_user_budget = config.total_budget / 2

    def build_users():
        return [
            QDNUser(
                name=f"user-{index}",
                policy=config.make_oscar(total_budget=per_user_budget),
                request_process=UniformRequestProcess(min_pairs=1, max_pairs=2),
                total_budget=per_user_budget,
            )
            for index in range(2)
        ]

    def run():
        simulator = MultiUserSimulator(
            graph=graph, users=build_users(), horizon=horizon, num_candidate_routes=3
        )
        return simulator.run(seed=52)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    # Provider accounting: per-slot totals match the per-user records and the
    # utilisation never exceeds the hardware.
    for t, record in enumerate(outcome.provider_records):
        user_cost = sum(result.records[t].cost for result in outcome.user_results.values())
        assert record.total_cost == user_cost
        assert record.qubit_utilisation <= 1.0 + 1e-9
    assert outcome.total_served_fraction() > 0.8

    utilisation = outcome.provider_average_utilisation()
    print()
    print(
        f"provider qubit utilisation={utilisation['qubits']:.2%}, "
        f"channel utilisation={utilisation['channels']:.2%}, "
        f"served fraction={outcome.total_served_fraction():.2%}"
    )
