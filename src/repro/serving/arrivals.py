"""Streaming session arrivals: the open-system workload source.

A serving run replaces the fixed per-slot request sets of the batch
simulators with *sessions*: users that join the network mid-run, issue EC
requests at their own rate for the duration of their lifetime, optionally
renew, and depart.  An :class:`ArrivalProcess` generates the joins; each
join is a frozen :class:`SessionSpec` carrying everything a scheduler shard
needs to replay the session deterministically — including the session's own
seed, derived as ``derive_seed(base_seed, "session", session_id)``.

Determinism contract: the arrival stream itself draws only from one
generator seeded with ``derive_seed(base_seed, "arrivals")``, and every
session's private stream is a pure function of its id.  Sessions can
therefore be partitioned across shards (or processes) in any grouping
without changing a single draw — the invariant behind the sharded
scheduler's byte-identity guarantee.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.network.graph import NodeName, QDNGraph
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_non_negative, check_positive, check_probability
from repro.workload.requests import _sample_distinct_pair


@dataclass(frozen=True)
class SessionSpec:
    """One admitted-or-rejected session: a user joining the network.

    ``seed`` is the session's private stream seed; every draw the session
    makes (request counts, request realisations, renewals) comes from a
    generator built from it, so the session's whole trajectory is a pure
    function of this spec regardless of which shard or process serves it.
    """

    session_id: int
    joined_slot: int
    source: NodeName
    destination: NodeName
    request_rate: float
    lifetime: int
    renew_probability: float
    seed: int

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("session source and destination must differ")
        check_non_negative(self.request_rate, "request_rate")
        check_positive(self.lifetime, "lifetime")
        check_probability(self.renew_probability, "renew_probability")

    @property
    def endpoints(self) -> Tuple[NodeName, NodeName]:
        """The unordered endpoint pair, in canonical order."""
        a, b = sorted((self.source, self.destination), key=repr)
        return (a, b)


class ArrivalProcess(ABC):
    """Generates the session joins of each slot (see module docstring)."""

    def reset(self, graph: QDNGraph, base_seed: int) -> None:
        """Bind the process to one run: graph, arrival stream, id counter."""
        self._graph = graph
        self._base_seed = int(base_seed)
        self._rng = as_generator(derive_seed(base_seed, "arrivals"))
        self._next_id = 0

    @abstractmethod
    def joins(self, t: int) -> List[SessionSpec]:
        """The sessions joining at slot ``t`` (call :meth:`reset` first)."""

    # ------------------------------------------------------------------ #
    # Shared helpers for subclasses
    # ------------------------------------------------------------------ #
    def _sample_lifetime(self, mean_lifetime: float) -> int:
        """A geometric lifetime (in slots) with the configured mean, >= 1."""
        if mean_lifetime <= 1.0:
            return 1
        return max(1, int(self._rng.geometric(1.0 / mean_lifetime)))

    def _make_session(
        self, t: int, request_rate: float, mean_lifetime: float, renew_probability: float
    ) -> SessionSpec:
        session_id = self._next_id
        self._next_id += 1
        source, destination = _sample_distinct_pair(self._graph.nodes, self._rng)
        return SessionSpec(
            session_id=session_id,
            joined_slot=t,
            source=source,
            destination=destination,
            request_rate=request_rate,
            lifetime=self._sample_lifetime(mean_lifetime),
            renew_probability=renew_probability,
            seed=derive_seed(self._base_seed, "session", session_id),
        )


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Poisson session joins: ``k_t ~ Poisson(arrival_rate)`` per slot.

    Each join samples uniform distinct endpoints, a geometric lifetime with
    mean ``mean_lifetime`` slots, and carries the configured per-slot
    request rate and renewal probability.  ``arrival_rate=0`` is a valid
    silent source (useful for drain tests).
    """

    arrival_rate: float = 0.5
    request_rate: float = 2.0
    mean_lifetime: float = 20.0
    renew_probability: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.arrival_rate, "arrival_rate")
        check_non_negative(self.request_rate, "request_rate")
        check_positive(self.mean_lifetime, "mean_lifetime")
        check_probability(self.renew_probability, "renew_probability")

    def joins(self, t: int) -> List[SessionSpec]:
        count = int(self._rng.poisson(self.arrival_rate)) if self.arrival_rate > 0 else 0
        return [
            self._make_session(
                t, self.request_rate, self.mean_lifetime, self.renew_probability
            )
            for _ in range(count)
        ]


@dataclass
class TraceArrivals(ArrivalProcess):
    """Trace-driven session joins: a fixed per-slot join-count schedule.

    ``schedule[t % len(schedule)]`` sessions join at slot ``t`` (the
    schedule cycles, so a short trace drives an arbitrarily long run; an
    empty schedule is a silent source).  Endpoints and lifetimes are still
    sampled from the arrival stream, so two runs of the same trace and seed
    are identical.
    """

    schedule: Tuple[int, ...] = ()
    request_rate: float = 2.0
    mean_lifetime: float = 20.0
    renew_probability: float = 0.0

    def __post_init__(self) -> None:
        self.schedule = tuple(int(count) for count in self.schedule)
        for position, count in enumerate(self.schedule):
            check_non_negative(count, f"schedule[{position}]")
        check_non_negative(self.request_rate, "request_rate")
        check_positive(self.mean_lifetime, "mean_lifetime")
        check_probability(self.renew_probability, "renew_probability")

    def joins(self, t: int) -> List[SessionSpec]:
        if not self.schedule:
            return []
        count = self.schedule[t % len(self.schedule)]
        return [
            self._make_session(
                t, self.request_rate, self.mean_lifetime, self.renew_probability
            )
            for _ in range(count)
        ]


#: Named arrival kinds accepted by the serving configuration.
ARRIVAL_KINDS: Tuple[str, ...] = ("poisson", "trace")


def build_arrivals(
    kind: str,
    arrival_rate: float = 0.5,
    arrival_trace: Optional[Sequence[int]] = None,
    request_rate: float = 2.0,
    mean_lifetime: float = 20.0,
    renew_probability: float = 0.0,
) -> ArrivalProcess:
    """Instantiate the arrival process of one serving configuration."""
    kind = str(kind).strip().lower()
    if kind == "poisson":
        return PoissonArrivals(
            arrival_rate=arrival_rate,
            request_rate=request_rate,
            mean_lifetime=mean_lifetime,
            renew_probability=renew_probability,
        )
    if kind == "trace":
        return TraceArrivals(
            schedule=tuple(arrival_trace or ()),
            request_rate=request_rate,
            mean_lifetime=mean_lifetime,
            renew_probability=renew_probability,
        )
    raise ValueError(
        f"unknown arrival kind {kind!r}; choose from {', '.join(ARRIVAL_KINDS)}"
    )
