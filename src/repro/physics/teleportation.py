"""Quantum teleportation, simulated at the state-vector level.

Teleportation is the application that motivates entanglement routing in the
paper (Sec. II-3, Fig. 2): once Alice and Bob share a Bell pair, Alice can
transfer the state of a data qubit to Bob by performing a Bell-state
measurement on her data qubit and her half of the pair, sending the two
classical outcome bits to Bob, and having Bob apply the corresponding Pauli
correction.  This module implements the full three-qubit protocol with an
explicit 8-dimensional state vector so tests can verify that Bob ends up
with *exactly* Alice's original state (up to numerical precision) for every
measurement outcome.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.physics.qubit import BellPair, BellState, Qubit
from repro.utils.rng import SeedLike, as_generator

# Single-qubit Pauli operators used for Bob's correction.
_IDENTITY = np.eye(2, dtype=complex)
_PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
_PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

# Hadamard and CNOT (control = qubit 0, target = qubit 1) on two qubits.
_HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2.0)
_CNOT = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)


@dataclass(frozen=True)
class TeleportationOutcome:
    """Result of teleporting one data qubit.

    ``classical_bits`` are the two bits Alice sends to Bob; ``received`` is
    the state of Bob's qubit after the Pauli correction; ``fidelity`` is the
    state fidelity between the received state and the original data qubit.
    """

    classical_bits: Tuple[int, int]
    received: Qubit
    fidelity: float

    @property
    def succeeded(self) -> bool:
        """Whether the state arrived essentially intact."""
        return self.fidelity > 1.0 - 1e-9


def _kron3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Kronecker product of three operators/vectors."""
    return np.kron(np.kron(a, b), c)


def teleport(
    data: Qubit,
    pair: BellPair,
    seed: SeedLike = None,
) -> TeleportationOutcome:
    """Teleport ``data`` from the pair's ``node_a`` side to its ``node_b`` side.

    The shared pair is taken to be in its nominal Bell state (the protocol
    with noisy pairs is studied via the Werner fidelity algebra instead, see
    :mod:`repro.physics.fidelity`).  The measurement outcome is sampled with
    the provided RNG; all four outcomes occur with probability 1/4 and all
    lead to perfect state transfer after correction.
    """
    rng = as_generator(seed)

    # Qubit order: [data (Alice), ebit_A (Alice), ebit_B (Bob)].
    state = np.kron(data.state_vector(), pair.bell_state.state_vector())

    # Alice applies CNOT(data -> ebit_A) then Hadamard on the data qubit.
    cnot_da = np.kron(_CNOT, _IDENTITY)
    state = cnot_da @ state
    hadamard_d = _kron3(_HADAMARD, _IDENTITY, _IDENTITY)
    state = hadamard_d @ state

    # Measure Alice's two qubits in the computational basis.
    amplitudes = state.reshape(2, 2, 2)
    probabilities = np.abs(amplitudes) ** 2
    outcome_probabilities = probabilities.sum(axis=2).reshape(4)
    outcome = int(rng.choice(4, p=outcome_probabilities / outcome_probabilities.sum()))
    bit_data, bit_ebit = divmod(outcome, 2)

    # Collapse Bob's qubit.
    bob_amplitudes = amplitudes[bit_data, bit_ebit, :]
    norm = np.linalg.norm(bob_amplitudes)
    if norm == 0:  # pragma: no cover - cannot happen for valid inputs
        raise RuntimeError("measurement collapsed to a zero-probability branch")
    bob_state = bob_amplitudes / norm

    # Bob's Pauli correction depends on the classical bits and on which Bell
    # state was shared; for |Φ+> the standard correction is Z^{m_data} X^{m_ebit}.
    correction = _IDENTITY
    if pair.bell_state in (BellState.PHI_PLUS, BellState.PHI_MINUS):
        x_power, z_power = bit_ebit, bit_data
    else:  # PSI states have their halves bit-flipped relative to PHI states.
        x_power, z_power = 1 - bit_ebit, bit_data
    if pair.bell_state in (BellState.PHI_MINUS, BellState.PSI_MINUS):
        z_power = 1 - z_power
    if x_power:
        correction = _PAULI_X @ correction
    if z_power:
        correction = _PAULI_Z @ correction
    corrected = correction @ bob_state

    received = Qubit(alpha=corrected[0], beta=corrected[1])
    fidelity = received.fidelity_to(data)
    return TeleportationOutcome(
        classical_bits=(bit_data, bit_ebit),
        received=received,
        fidelity=fidelity,
    )


def teleportation_fidelity_with_noisy_pair(pair_fidelity: float) -> float:
    """Average teleportation fidelity achievable with a Werner pair of fidelity ``F``.

    The standard relation for teleporting through a Werner channel is
    ``F_teleport = (2F + 1) / 3`` — exposed here because it is the quantity a
    DQC application ultimately cares about when the routing layer reports an
    EC fidelity.
    """
    if not 0.0 <= pair_fidelity <= 1.0:
        raise ValueError(f"pair_fidelity must be in [0, 1], got {pair_fidelity}")
    return (2.0 * pair_fidelity + 1.0) / 3.0
