"""Multiple users sharing one quantum data network.

The paper models "other users" of the QDN as an exogenous process that
occupies part of the hardware.  With the multi-user simulator the other
users are real: every tenant runs its own policy against the resources the
earlier tenants left over in that slot (the service order rotates every slot
so that average priority is equal).  The example compares a deployment where
every tenant runs OSCAR against one where every tenant runs the naive
shortest-route heuristic, and reports both the per-tenant quality and the
provider-side utilisation.

Run it with::

    python examples/multi_tenant_qdn.py
"""

from __future__ import annotations

from repro.core.baselines import ShortestRouteUniformPolicy
from repro.core.multiuser import MultiUserSimulator, QDNUser
from repro.core.oscar import OscarPolicy
from repro.experiments.reporting import format_table
from repro.network.topology import waxman_topology_with_degree
from repro.workload.requests import HotspotRequestProcess, UniformRequestProcess


def build_users(kind: str, horizon: int, budget: float):
    """Three tenants with different workloads, all running the same policy kind."""

    def make_policy():
        if kind == "oscar":
            return OscarPolicy(
                total_budget=budget, horizon=horizon, trade_off_v=2500.0,
                gamma=500.0, gibbs_iterations=20,
            )
        return ShortestRouteUniformPolicy(total_budget=budget, horizon=horizon)

    return [
        QDNUser(
            name="dqc-lab",
            policy=make_policy(),
            request_process=UniformRequestProcess(min_pairs=1, max_pairs=3),
            total_budget=budget,
        ),
        QDNUser(
            name="hpc-centre",
            policy=make_policy(),
            request_process=HotspotRequestProcess(min_pairs=1, max_pairs=2, hotspot_probability=0.8),
            total_budget=budget,
        ),
        QDNUser(
            name="startup",
            policy=make_policy(),
            request_process=UniformRequestProcess(min_pairs=0, max_pairs=2),
            total_budget=budget,
        ),
    ]


def main() -> None:
    horizon = 25
    budget = 400.0
    graph = waxman_topology_with_degree(num_nodes=14, target_degree=4.0, seed=31)
    print(f"Shared network: {graph.describe()}\n")

    for kind, label in (("oscar", "every tenant runs OSCAR"),
                        ("naive", "every tenant runs the naive heuristic")):
        simulator = MultiUserSimulator(
            graph=graph, users=build_users(kind, horizon, budget), horizon=horizon
        )
        outcome = simulator.run(seed=32)
        rows = []
        for name, result in outcome.user_results.items():
            rows.append([
                name,
                round(result.average_success_rate(), 4),
                round(result.served_fraction(), 3),
                round(result.total_cost, 1),
            ])
        utilisation = outcome.provider_average_utilisation()
        print(format_table(
            ["tenant", "avg EC success", "served fraction", "qubits spent"],
            rows,
            title=f"{label} (budget {budget:g} each, {horizon} slots)",
        ))
        print(
            f"provider view: qubit utilisation {utilisation['qubits']:.1%}, "
            f"channel utilisation {utilisation['channels']:.1%}, "
            f"overall served fraction {outcome.total_served_fraction():.1%}\n"
        )

    print("Reading the two tables: OSCAR tenants get far more out of the requests")
    print("they serve (higher success rates for the uniform-workload tenants), but")
    print("they also allocate more channels per EC, so a tenant whose traffic is")
    print("concentrated on a contended hotspot can see more of its requests crowded")
    print("out than under the frugal naive policy.  Per-user optimisation alone does")
    print("not manage that interference — which is precisely why the paper models")
    print("other users as an exogenous availability process and why provider-side")
    print("admission control is a natural follow-up to the user-centric problem.")


if __name__ == "__main__":
    main()
