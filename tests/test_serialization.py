"""Tests for topology and workload-trace serialisation (network.io, workload.io)."""

import json

import pytest

from repro.network.graph import edge_key
from repro.network.io import (
    graph_from_dict,
    graph_to_dict,
    graphs_equal,
    load_graph,
    save_graph,
)
from repro.network.topology import waxman_topology
from repro.workload.io import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.workload.requests import UniformRequestProcess
from repro.workload.traces import generate_trace

from conftest import make_line_graph


class TestGraphSerialization:
    def test_dict_round_trip(self, small_waxman):
        rebuilt = graph_from_dict(graph_to_dict(small_waxman))
        assert graphs_equal(small_waxman, rebuilt)

    def test_file_round_trip(self, small_waxman, tmp_path):
        path = save_graph(small_waxman, tmp_path / "nets" / "topology.json")
        assert path.exists()
        rebuilt = load_graph(path)
        assert graphs_equal(small_waxman, rebuilt)

    def test_preserves_capacities_and_physics(self, line_graph):
        rebuilt = graph_from_dict(graph_to_dict(line_graph))
        assert rebuilt.qubit_capacity(0) == line_graph.qubit_capacity(0)
        key = edge_key(0, 1)
        assert rebuilt.channel_capacity(key) == line_graph.channel_capacity(key)
        assert rebuilt.attempt_success(key) == line_graph.attempt_success(key)
        assert rebuilt.attempts_per_slot == line_graph.attempts_per_slot
        assert rebuilt.slot_success(key) == pytest.approx(line_graph.slot_success(key))

    def test_preserves_positions(self, small_waxman):
        rebuilt = graph_from_dict(graph_to_dict(small_waxman))
        for node in small_waxman.nodes:
            assert rebuilt.node(node).position == pytest.approx(small_waxman.node(node).position)

    def test_json_file_is_plain_data(self, line_graph, tmp_path):
        path = save_graph(line_graph, tmp_path / "topology.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-qdn-topology"
        assert len(payload["nodes"]) == 4

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, line_graph):
        payload = graph_to_dict(line_graph)
        payload["version"] = 99
        with pytest.raises(ValueError):
            graph_from_dict(payload)

    def test_graphs_equal_detects_differences(self, line_graph):
        other = make_line_graph(num_nodes=4, qubits=5)
        assert not graphs_equal(line_graph, other)
        assert graphs_equal(line_graph, line_graph)


class TestTraceSerialization:
    @pytest.fixture
    def trace(self, small_waxman):
        return generate_trace(
            small_waxman,
            horizon=6,
            request_process=UniformRequestProcess(min_pairs=1, max_pairs=3),
            seed=9,
        )

    def test_dict_round_trip_preserves_slots(self, trace):
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.horizon == trace.horizon
        for original, copy in zip(trace.slots, rebuilt.slots):
            assert copy.t == original.t
            assert copy.requests == original.requests
            assert dict(copy.snapshot.qubits) == dict(original.snapshot.qubits)
            assert dict(copy.snapshot.channels) == dict(original.snapshot.channels)

    def test_dict_round_trip_preserves_candidate_routes(self, trace):
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert set(rebuilt.candidate_routes.keys()) == set(trace.candidate_routes.keys())
        for endpoints, routes in trace.candidate_routes.items():
            assert rebuilt.candidate_routes[endpoints] == routes

    def test_file_round_trip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "traces" / "trace.json")
        rebuilt = load_trace(path)
        assert rebuilt.total_requests() == trace.total_requests()
        assert rebuilt.max_route_hops() == trace.max_route_hops()

    def test_replay_gives_identical_simulation(self, small_waxman, trace, tmp_path):
        """A policy run on the reloaded trace reproduces the original run exactly."""
        from repro.core.baselines import MyopicFixedPolicy
        from repro.simulation.engine import SlottedSimulator

        path = save_trace(trace, tmp_path / "trace.json")
        reloaded = load_trace(path)

        def run(workload):
            policy = MyopicFixedPolicy(
                total_budget=150.0, horizon=workload.horizon, gamma=10.0, gibbs_iterations=10
            )
            simulator = SlottedSimulator(
                graph=small_waxman, trace=workload, total_budget=150.0, realize=False
            )
            return simulator.run(policy, seed=5)

        original = run(trace)
        replayed = run(reloaded)
        assert original.per_slot_costs() == replayed.per_slot_costs()
        assert original.average_utility() == pytest.approx(replayed.average_utility())

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"format": "other"})
