"""Attempt-level entanglement generation across a quantum channel.

Generating an entangled pair over a lossy fibre succeeds with a small
per-attempt probability ``p̃`` (the paper quotes 2.18e-4 measured, and uses
2e-4 in simulation); within one slot up to ``A`` attempts can be made per
channel, and several parallel channels can be used.  This module simulates
the process attempt by attempt — which attempt succeeded determines the
creation time and hence how much decoherence the pair suffers before the
end of the slot — and also exposes the aggregate analytic quantities so the
Monte-Carlo layer can be validated against Eq. (1) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.network.channels import (
    ATTEMPT_DURATION_S,
    multi_channel_success,
    per_slot_success,
)
from repro.physics.qubit import BellPair, BellState
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive, check_probability


def sample_successes(
    probabilities: Sequence[float], seed: SeedLike = None
) -> np.ndarray:
    """Batched Bernoulli draws of per-edge slot successes.

    One ``Generator.random(n)`` call replaces ``n`` sequential scalar draws;
    NumPy fills the batch from the same bit stream, so the outcome of each
    edge is *bit-identical* to the sequential loop it replaces — results do
    not change when callers switch to the batched form, only the number of
    RNG round-trips per slot does.  ``seed`` accepts anything
    :func:`repro.utils.rng.as_generator` does (callers threading a live
    generator through a simulation pass it unchanged).
    """
    rng = as_generator(seed)
    p = np.asarray(probabilities, dtype=float)
    if p.size == 0:
        return np.zeros(0, dtype=bool)
    return rng.random(p.size) < p


@dataclass(frozen=True)
class GenerationResult:
    """Outcome of one slot of entanglement generation on one edge.

    ``pair`` is ``None`` when every attempt on every channel failed.
    ``successful_channel`` / ``successful_attempt`` locate the first success
    (channel index, attempt index); ``attempts_used`` counts the attempts
    actually consumed across all channels (attempts stop once one channel
    succeeds, matching a heralded generation protocol).
    """

    pair: Optional[BellPair]
    successful_channel: Optional[int]
    successful_attempt: Optional[int]
    attempts_used: int

    @property
    def succeeded(self) -> bool:
        """Whether an entangled pair was produced."""
        return self.pair is not None


@dataclass(frozen=True)
class EntanglementGenerator:
    """Simulates heralded Bell-pair generation on a single edge.

    Parameters
    ----------
    attempt_success:
        Per-attempt success probability ``p̃`` of one channel.
    attempts_per_slot:
        Maximum attempts per channel in one slot (paper default 4000).
    attempt_duration:
        Wall-clock duration of one attempt (paper: 165 µs).
    base_fidelity:
        Fidelity of a freshly generated pair (1.0 = perfect).
    """

    attempt_success: float
    attempts_per_slot: int = 4000
    attempt_duration: float = ATTEMPT_DURATION_S
    base_fidelity: float = 1.0

    def __post_init__(self) -> None:
        check_probability(self.attempt_success, "attempt_success")
        check_positive(self.attempts_per_slot, "attempts_per_slot")
        check_positive(self.attempt_duration, "attempt_duration")
        check_in_range(self.base_fidelity, 0.0, 1.0, "base_fidelity")

    # ------------------------------------------------------------------ #
    # Analytic quantities (paper, Sec. III-B)
    # ------------------------------------------------------------------ #
    def slot_success_probability(self) -> float:
        """``p = 1 − (1 − p̃)^A``: single-channel success within a slot."""
        return per_slot_success(self.attempt_success, self.attempts_per_slot)

    def edge_success_probability(self, channels: int) -> float:
        """``P(n) = 1 − (1 − p)^n``: success using ``channels`` parallel channels."""
        return multi_channel_success(self.slot_success_probability(), channels)

    # ------------------------------------------------------------------ #
    # Monte-Carlo simulation
    # ------------------------------------------------------------------ #
    def generate(
        self,
        node_a: Hashable,
        node_b: Hashable,
        channels: int = 1,
        slot_start_time: float = 0.0,
        seed: SeedLike = None,
    ) -> GenerationResult:
        """Attempt to create one Bell pair between ``node_a`` and ``node_b``.

        All ``channels`` channels attempt in lock-step rounds; the first
        success (lowest attempt index, then lowest channel index) wins and
        generation stops, which is how a heralded protocol would behave.
        """
        if channels < 0:
            raise ValueError(f"channels must be non-negative, got {channels}")
        rng = as_generator(seed)
        if channels == 0 or self.attempt_success == 0.0:
            return GenerationResult(
                pair=None,
                successful_channel=None,
                successful_attempt=None,
                attempts_used=channels * self.attempts_per_slot,
            )

        # Draw the first-success attempt index per channel from a geometric
        # distribution; values beyond the per-slot attempt budget mean the
        # channel never succeeds this slot.
        first_success = rng.geometric(self.attempt_success, size=channels)
        best_channel = int(np.argmin(first_success))
        best_attempt = int(first_success[best_channel])
        if best_attempt > self.attempts_per_slot:
            return GenerationResult(
                pair=None,
                successful_channel=None,
                successful_attempt=None,
                attempts_used=channels * self.attempts_per_slot,
            )
        creation_time = slot_start_time + best_attempt * self.attempt_duration
        pair = BellPair(
            node_a=node_a,
            node_b=node_b,
            bell_state=BellState.PHI_PLUS,
            fidelity=self.base_fidelity,
            created_at=creation_time,
        )
        # Channels that had not yet succeeded stop attempting after the herald.
        attempts_used = int(np.minimum(first_success, best_attempt).sum())
        return GenerationResult(
            pair=pair,
            successful_channel=best_channel,
            successful_attempt=best_attempt,
            attempts_used=attempts_used,
        )

    def simulate_success(self, channels: int, seed: SeedLike = None) -> bool:
        """Fast Bernoulli draw of "did this edge succeed this slot?".

        Statistically identical to :meth:`generate` succeeding, but without
        materialising the pair; used by the slotted simulator when only the
        success/failure outcome matters.  ``seed`` accepts anything
        :func:`repro.utils.rng.as_generator` does.
        """
        rng = as_generator(seed)
        if channels <= 0:
            return False
        return bool(rng.random() < self.edge_success_probability(channels))

    def simulate_successes(
        self, channels: Sequence[int], seed: SeedLike = None
    ) -> np.ndarray:
        """Vectorised :meth:`simulate_success` over many channel counts.

        Draws one batched uniform vector for the edges with a positive
        channel count (zero-channel entries consume no randomness and are
        reported as failures), exactly mirroring — bit for bit — a loop of
        scalar :meth:`simulate_success` calls on the same generator.
        """
        rng = as_generator(seed)
        counts = np.asarray(channels, dtype=float)
        outcomes = np.zeros(counts.shape, dtype=bool)
        positive = counts > 0
        if np.any(positive):
            # Thresholds go through edge_success_probability so this stays
            # the same formula (bit for bit) as the scalar simulate_success.
            probabilities = [
                self.edge_success_probability(count)
                for count in counts[positive]
            ]
            outcomes[positive] = sample_successes(probabilities, rng)
        return outcomes

    def empirical_success_rate(
        self, channels: int, trials: int, seed: SeedLike = None
    ) -> float:
        """Monte-Carlo estimate of the edge success probability.

        Used by the validation benchmarks to confirm the analytic Eq. (1).
        """
        check_positive(trials, "trials")
        rng = as_generator(seed)
        if channels <= 0:
            return 0.0
        slot_p = self.slot_success_probability()
        draws = rng.random((trials, channels))
        return float(np.mean((draws < slot_p).any(axis=1)))
