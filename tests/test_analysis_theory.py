"""Tests for repro.analysis.theory (Proposition 2, Theorems 1 and 2)."""

import math

import pytest

from repro.analysis.theory import (
    delta_optimality_gap,
    drift_constant_bound,
    minimum_feasible_budget,
    theorem1_violation_bound,
    theorem2_optimality_gap,
)


class TestDelta:
    def test_formula(self):
        assert delta_optimality_gap(2500.0, 5, 4, 0.55) == pytest.approx(
            2500.0 * 5 * 4 * math.log(2 - 0.55)
        )

    def test_grows_with_v(self):
        assert delta_optimality_gap(5000.0, 5, 4, 0.55) > delta_optimality_gap(2500.0, 5, 4, 0.55)

    def test_smaller_p_min_gives_larger_gap(self):
        assert delta_optimality_gap(1.0, 1, 1, 0.1) > delta_optimality_gap(1.0, 1, 1, 0.9)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            delta_optimality_gap(0.0, 5, 4, 0.5)
        with pytest.raises(ValueError):
            delta_optimality_gap(1.0, 5, 4, 0.0)


class TestDriftConstant:
    def test_positive(self):
        assert drift_constant_bound(50.0, 25.0) > 0

    def test_covers_both_extremes(self):
        # Spending nothing deviates by C/T; spending max_cost deviates by max_cost - C/T.
        assert drift_constant_bound(30.0, 25.0) == pytest.approx(0.5 * 25.0**2)
        assert drift_constant_bound(100.0, 25.0) == pytest.approx(0.5 * 75.0**2)


class TestTheorem1:
    def paper_bound(self, **overrides):
        parameters = dict(
            horizon=200,
            initial_queue=10.0,
            trade_off_v=2500.0,
            max_pairs=5,
            max_route_length=4,
            min_slot_success=0.55,
            drift_constant=drift_constant_bound(60.0, 25.0),
        )
        parameters.update(overrides)
        return theorem1_violation_bound(**parameters)

    def test_positive(self):
        assert self.paper_bound() > 0

    def test_decreases_with_horizon(self):
        assert self.paper_bound(horizon=2000) < self.paper_bound(horizon=200)

    def test_decreases_with_initial_queue(self):
        assert self.paper_bound(initial_queue=1000.0) < self.paper_bound(initial_queue=0.0)

    def test_increases_with_v(self):
        assert self.paper_bound(trade_off_v=10000.0) > self.paper_bound(trade_off_v=1000.0)

    def test_vanishes_as_horizon_grows(self):
        assert self.paper_bound(horizon=10**8) == pytest.approx(0.0, abs=0.2)


class TestTheorem2:
    def test_gap_decreases_with_v(self):
        delta = delta_optimality_gap(2500.0, 5, 4, 0.55)
        small_v = theorem2_optimality_gap(200, 10.0, 2500.0, 100.0, delta)
        delta_big = delta_optimality_gap(10000.0, 5, 4, 0.55)
        big_v = theorem2_optimality_gap(200, 10.0, 10000.0, 100.0, delta_big)
        # (Δ + B)/V: Δ scales with V so the Δ/V part is constant, but the B/V
        # and q0² terms shrink — the overall gap must not increase.
        assert big_v <= small_v + 1e-9

    def test_gap_increases_with_q0(self):
        assert theorem2_optimality_gap(200, 100.0, 2500.0, 10.0, 1000.0) > theorem2_optimality_gap(
            200, 0.0, 2500.0, 10.0, 1000.0
        )

    def test_q0_effect_vanishes_with_horizon(self):
        short = theorem2_optimality_gap(10, 50.0, 2500.0, 10.0, 1000.0)
        long = theorem2_optimality_gap(10**6, 50.0, 2500.0, 10.0, 1000.0)
        assert long < short


class TestAssumptionOne:
    def test_paper_configuration_satisfies_assumption(self):
        """C=5000 >= F·L·T only if L <= 5 for F=5, T=200; the paper's candidate
        routes are short, and with L=4 the minimum budget is 4000 < 5000."""
        assert minimum_feasible_budget(5, 4, 200) == 4000.0
        assert 5000.0 >= minimum_feasible_budget(5, 4, 200)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            minimum_feasible_budget(0, 4, 200)
