"""A custom two-axis study through the declarative sweep layer.

The paper's figures each sweep one parameter; the :class:`repro.api.Study`
layer makes multi-axis grids just as cheap to express.  This example maps
OSCAR's success rate over a **budget × topology-family** grid — a question
the paper never asks, answered in ~15 lines:

    python examples/sweep_study.py [--workers N] [--store DIR]

Every ``point x policy x trial`` unit of the grid is drained by one worker
pool, so ``--workers 4`` saturates four cores across the whole grid rather
than parallelising each point separately.  Pass ``--store`` twice in a row
to watch the second run complete instantly from the content-hash store.
"""

from __future__ import annotations

import argparse

from repro import api


def build_study() -> api.Study:
    """Budget × topology grid over the benchmark-scale scenario."""
    base = (
        api.Scenario.small("sweep-demo")
        .with_workload(horizon=12)
        .with_trials(2)
        .with_policies("oscar", "myopic-fixed")
    )
    return (
        api.Study("budget-x-topology")
        .base(base)
        .over("budget.total_budget", [200.0, 300.0, 450.0], label="C")
        .over_topology("waxman", "ring", "grid")
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="processes draining the study work queue")
    parser.add_argument("--store", default=None,
                        help="resumable result-store directory")
    arguments = parser.parse_args(argv)

    study = build_study()
    print(f"{len(study)} grid points "
          f"({' x '.join(str(len(axis.values)) for axis in study.axes)})\n")
    result = study.run(
        workers=arguments.workers,
        store=arguments.store,
        on_progress=lambda message: print(f"  {message}"),
    )

    print()
    print(result.format_summary(metrics=("average_success_rate",)))
    print()
    # Slice the grid: how much does the ring topology cost OSCAR at C=300?
    waxman = result.record_at(C=300.0, topology="waxman").summary()["OSCAR"]
    ring = result.record_at(C=300.0, topology="ring").summary()["OSCAR"]
    delta = waxman["average_success_rate"].mean - ring["average_success_rate"].mean
    print(f"OSCAR success-rate drop waxman -> ring at C=300: {delta:+.4f}")
    print(f"\n[{result.meta['tasks_executed']} unit(s) on "
          f"{result.meta['workers']} worker(s), "
          f"{result.meta['points_cached']} point(s) from store, "
          f"{result.meta['elapsed_seconds']:.1f} s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
