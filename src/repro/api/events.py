"""Streaming run events and observer hooks.

A :class:`~repro.api.session.Session` emits a typed event stream while it
executes a scenario: one :class:`RunStarted`, then per trial a
:class:`TrialStarted`, a :class:`SlotCompleted` per simulated slot, a
:class:`TrialCompleted`, and finally a :class:`RunCompleted`.  Observers
subscribe by subclassing :class:`RunObserver` (override only what you need)
or by wrapping a plain callable with :class:`CallbackObserver`.

Observers can end a run early by raising :class:`EarlyStop` from any hook —
the session stops cleanly and returns the trials completed so far.

When trials execute in a worker pool the per-slot events of a trial are
*replayed* in order after the trial's results arrive (workers cannot call
back into the parent mid-trial); ``SlotCompleted.replayed`` tells the two
modes apart.  Event order is deterministic in both modes: trials are always
reported in trial order.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TextIO


class EarlyStop(Exception):
    """Raised by an observer to end the run after the current event."""


@dataclass(frozen=True)
class RunEvent:
    """Base class of every event emitted by a session."""

    scenario: str


@dataclass(frozen=True)
class RunStarted(RunEvent):
    """The session is about to execute ``trials`` trials."""

    trials: int
    workers: int
    kind: str  # "comparison" | "multiuser"
    lineup: tuple


@dataclass(frozen=True)
class TrialStarted(RunEvent):
    """Execution of one trial began (serial) or its results arrived (parallel)."""

    trial: int


@dataclass(frozen=True)
class SlotCompleted(RunEvent):
    """One slot of one policy (or the multi-user provider) finished.

    ``record`` is a :class:`~repro.simulation.results.SlotRecord` for
    comparison runs and a
    :class:`~repro.core.multiuser.ProviderSlotRecord` for multi-user runs.
    """

    trial: int
    policy: str
    record: Any
    replayed: bool = False


@dataclass(frozen=True)
class TrialCompleted(RunEvent):
    """One trial finished; ``results`` maps line-up names to their summaries."""

    trial: int
    results: Dict[str, Dict[str, float]]


@dataclass(frozen=True)
class RunCompleted(RunEvent):
    """The whole run finished (``stopped_early`` if an observer ended it)."""

    trials_completed: int
    elapsed_seconds: float
    stopped_early: bool


class RunObserver:
    """Base observer: dispatches :meth:`on_event` to per-type hooks.

    Subclasses override any of the ``on_*`` methods; unknown event types fall
    through silently so observers stay forward-compatible.
    """

    def on_event(self, event: RunEvent) -> None:
        handlers: Dict[type, Callable[[Any], None]] = {
            RunStarted: self.on_run_started,
            TrialStarted: self.on_trial_started,
            SlotCompleted: self.on_slot,
            TrialCompleted: self.on_trial_completed,
            RunCompleted: self.on_run_completed,
        }
        handler = handlers.get(type(event))
        if handler is not None:
            handler(event)

    def on_run_started(self, event: RunStarted) -> None:  # pragma: no cover - hook
        pass

    def on_trial_started(self, event: TrialStarted) -> None:  # pragma: no cover - hook
        pass

    def on_slot(self, event: SlotCompleted) -> None:  # pragma: no cover - hook
        pass

    def on_trial_completed(self, event: TrialCompleted) -> None:  # pragma: no cover - hook
        pass

    def on_run_completed(self, event: RunCompleted) -> None:  # pragma: no cover - hook
        pass


@dataclass
class CallbackObserver(RunObserver):
    """Adapts a plain callable ``f(event)`` to the observer interface."""

    callback: Callable[[RunEvent], None]

    def on_event(self, event: RunEvent) -> None:
        self.callback(event)


@dataclass
class EventLog(RunObserver):
    """Records every event in order (used by tests and notebooks)."""

    events: List[RunEvent] = field(default_factory=list)

    def on_event(self, event: RunEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type: type) -> List[RunEvent]:
        """All recorded events of one type, in arrival order."""
        return [event for event in self.events if isinstance(event, event_type)]


@dataclass
class ProgressObserver(RunObserver):
    """Prints one line per trial (and optionally per slot) to ``stream``.

    Every line is flushed immediately: when the stream is a pipe (CI log
    collector, ``repro run … 2> progress.log``, ``tail -f``) stdio is
    block-buffered, and without the flush a long run shows nothing until
    the buffer fills — progress that cannot be watched is no progress.
    """

    stream: TextIO = field(default_factory=lambda: sys.stderr)
    per_slot: bool = False
    _started: float = field(default=0.0, repr=False)

    def on_run_started(self, event: RunStarted) -> None:
        self._started = time.time()
        lineup = ", ".join(event.lineup)
        print(
            f"[{event.scenario}] {event.trials} trial(s), "
            f"workers={event.workers}, line-up: {lineup}",
            file=self.stream,
            flush=True,
        )

    def on_slot(self, event: SlotCompleted) -> None:
        if self.per_slot:
            t = getattr(event.record, "t", "?")
            print(
                f"[{event.scenario}] trial {event.trial} {event.policy} slot {t}",
                file=self.stream,
                flush=True,
            )

    def on_trial_completed(self, event: TrialCompleted) -> None:
        elapsed = time.time() - self._started
        print(
            f"[{event.scenario}] trial {event.trial} done ({elapsed:.1f} s elapsed)",
            file=self.stream,
            flush=True,
        )

    def on_run_completed(self, event: RunCompleted) -> None:
        state = "stopped early" if event.stopped_early else "completed"
        print(
            f"[{event.scenario}] {state}: {event.trials_completed} trial(s) "
            f"in {event.elapsed_seconds:.1f} s",
            file=self.stream,
            flush=True,
        )


@dataclass
class LiveMetricsObserver(RunObserver):
    """Maintains live running metrics per line-up entry while slots stream in.

    ``snapshot()`` returns, for every policy seen so far, the running mean
    utility and analytic success rate plus the cumulative cost — i.e. the
    quantities of the paper's Fig. 3 — computed incrementally from the
    streamed slot records.
    """

    _utility_sums: Dict[str, float] = field(default_factory=dict)
    _success_sums: Dict[str, float] = field(default_factory=dict)
    _costs: Dict[str, float] = field(default_factory=dict)
    _slots: Dict[str, int] = field(default_factory=dict)

    def on_slot(self, event: SlotCompleted) -> None:
        record = event.record
        utility = getattr(record, "utility", None)
        if utility is None:  # provider records have no utility column
            return
        key = event.policy
        self._slots[key] = self._slots.get(key, 0) + 1
        if utility == utility and utility not in (float("inf"), float("-inf")):
            self._utility_sums[key] = self._utility_sums.get(key, 0.0) + utility
        self._success_sums[key] = (
            self._success_sums.get(key, 0.0) + record.mean_success_probability
        )
        self._costs[key] = self._costs.get(key, 0.0) + record.cost

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Live running metrics per policy."""
        return {
            name: {
                "slots": float(count),
                "running_utility": self._utility_sums.get(name, 0.0) / count,
                "running_success_rate": self._success_sums.get(name, 0.0) / count,
                "cumulative_cost": self._costs.get(name, 0.0),
            }
            for name, count in self._slots.items()
            if count
        }
