"""The slot clock: converting between slots, attempts and wall-clock time.

A time slot in the paper is "the entanglement duration": long enough for
thousands of generation attempts (4000 by default, at 165 µs per attempt)
but shorter than the ~1.46 s decoherence time, so that links generated
within the slot can still be swapped and consumed.  The clock centralises
these conversions so the slotted simulator, the link layer and the physics
layer agree on times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.channels import ATTEMPT_DURATION_S, DECOHERENCE_TIME_S
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class SlotClock:
    """Maps slot indices and attempt indices to wall-clock seconds."""

    attempts_per_slot: int = 4000
    attempt_duration: float = ATTEMPT_DURATION_S
    guard_time: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.attempts_per_slot, "attempts_per_slot")
        check_positive(self.attempt_duration, "attempt_duration")
        check_non_negative(self.guard_time, "guard_time")

    @property
    def slot_duration(self) -> float:
        """Duration of one slot in seconds (attempt window plus guard time)."""
        return self.attempts_per_slot * self.attempt_duration + self.guard_time

    def slot_start(self, slot: int) -> float:
        """Wall-clock start time of ``slot``."""
        if slot < 0:
            raise ValueError(f"slot must be non-negative, got {slot}")
        return slot * self.slot_duration

    def slot_end(self, slot: int) -> float:
        """Wall-clock end time of ``slot``."""
        return self.slot_start(slot) + self.slot_duration

    def attempt_time(self, slot: int, attempt: int) -> float:
        """Wall-clock time at which attempt ``attempt`` of ``slot`` completes."""
        if not 0 <= attempt <= self.attempts_per_slot:
            raise ValueError(
                f"attempt must be in [0, {self.attempts_per_slot}], got {attempt}"
            )
        return self.slot_start(slot) + attempt * self.attempt_duration

    def slot_of_time(self, time: float) -> int:
        """The slot index containing wall-clock ``time``."""
        check_non_negative(time, "time")
        return int(time // self.slot_duration)

    def fits_within_decoherence(self, decoherence_time: float = DECOHERENCE_TIME_S) -> bool:
        """Whether a whole slot fits inside the entanglement decoherence time.

        The paper's parameters satisfy this (0.66 s slot vs 1.46 s memory),
        which is what justifies treating a slot as one atomic routing round.
        """
        check_positive(decoherence_time, "decoherence_time")
        return self.slot_duration <= decoherence_time
