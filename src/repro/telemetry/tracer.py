"""The span tracer: nestable, exception-safe timing of the pipeline stages.

The telemetry subsystem mirrors the invariant guard's discipline exactly
(:mod:`repro.guard.invariants`): a level string threaded from
``ExperimentConfig`` down to the simulators, a ``REPRO_TELEMETRY``
environment override applied at *construction* time (so scenario
dictionaries and content-addressed store keys are identical whether the
variable is set or not, and worker processes — which inherit the
environment — apply the same level as the parent), and a hard no-op
contract at ``off``: :meth:`Tracer.build` returns ``None``, no recorder
object exists, no randomness is drawn, and every produced table is
byte-identical to the historical output
(``benchmarks/telemetry_bench.py`` pins the residual overhead).

Levels:

``off``
    No tracer.  Call sites hold a ``None`` and take the plain path.
``light``
    Per-span-name aggregation only (count, wall seconds, CPU seconds)
    plus the metrics registry — constant memory, the default for
    always-on profiling.
``full``
    ``light`` plus a bounded ring of individual span events (pid/tid
    stamped) for Chrome-trace / Perfetto export and crash-bundle
    attachment.

Spans are plain ``with`` blocks and re-entrant by name::

    with tracer.span("kernel.solve", slot=t):
        decision = policy.decide(context, seed=rng)

Timing uses ``time.perf_counter`` (wall) and ``time.process_time``
(CPU); both are monotonic and RNG-free.  Everything a tracer collects is
observational — removing every call site changes no produced number.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any, ContextManager, Deque, Dict, Iterator, List, Mapping, Optional

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "TELEMETRY_LEVELS",
    "TELEMETRY_ENV_VAR",
    "METRICS_JSONL_ENV_VAR",
    "METRICS_EVERY_ENV_VAR",
    "DEFAULT_SPAN_RING",
    "TelemetryModel",
    "Tracer",
    "effective_telemetry_level",
    "events_to_stats",
    "maybe_span",
    "merge_telemetry_stats",
    "summarize_spans",
]

#: The recognised telemetry levels, cheapest first.
TELEMETRY_LEVELS = ("off", "light", "full")

#: Environment override of the configured telemetry level.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: Optional JSONL metrics-snapshot sink (periodic flush target).
METRICS_JSONL_ENV_VAR = "REPRO_METRICS_JSONL"

#: Flush period in slots for the JSONL sink (0 disables periodic flush).
METRICS_EVERY_ENV_VAR = "REPRO_METRICS_EVERY"

#: Default capacity of the per-trial span-event ring at the ``full`` level.
DEFAULT_SPAN_RING = 2048


def effective_telemetry_level(configured: str) -> str:
    """The level actually in force: ``REPRO_TELEMETRY`` wins over config.

    Applied here — at tracer-construction time — rather than inside
    :class:`~repro.experiments.config.ExperimentConfig`, exactly like
    :func:`repro.guard.invariants.effective_guard_level`, so scenario
    dictionaries and store/checkpoint keys never depend on the variable.
    """
    override = os.environ.get(TELEMETRY_ENV_VAR, "").strip().lower()
    if override:
        if override not in TELEMETRY_LEVELS:
            raise ValueError(
                f"invalid {TELEMETRY_ENV_VAR}={override!r}; "
                f"choose from {', '.join(TELEMETRY_LEVELS)}"
            )
        return override
    return configured


@dataclass(frozen=True)
class TelemetryModel:
    """The flat telemetry parameters (built by ``ExperimentConfig.telemetry_model()``)."""

    level: str = "light"
    span_ring: int = DEFAULT_SPAN_RING

    def __post_init__(self) -> None:
        if self.level not in TELEMETRY_LEVELS:
            raise ValueError(
                f"unknown telemetry level {self.level!r}; "
                f"choose from {', '.join(TELEMETRY_LEVELS)}"
            )
        if int(self.span_ring) <= 0:
            raise ValueError(f"span_ring must be positive, got {self.span_ring}")


class Tracer:
    """One run's span recorder, metrics registry and profiling aggregate.

    Built fresh per trial/run via :meth:`build` (``None`` when the
    effective level is ``off``), installed ambiently with
    :func:`repro.telemetry.hooks.activate` for call sites that cannot be
    threaded a handle, and drained into
    ``diagnostics["telemetry"]`` / ``diagnostics["telemetry_spans"]`` at
    the end of the run — the only channel that crosses worker-pool
    process boundaries.
    """

    __slots__ = (
        "level",
        "span_ring",
        "metrics",
        "slots_seen",
        "_agg",
        "_events",
        "_appended",
        "_depth",
        "_pid",
        "_tid",
        "_epoch",
        "_flush_path",
        "_flush_every",
        "_next_flush",
    )

    def __init__(self, level: str, span_ring: int = DEFAULT_SPAN_RING) -> None:
        if level not in TELEMETRY_LEVELS or level == "off":
            raise ValueError(f"a Tracer runs at 'light' or 'full', got {level!r}")
        self.level = level
        self.span_ring = int(span_ring)
        self.metrics = MetricsRegistry()
        self.slots_seen = 0
        # name -> [count, wall_s, cpu_s]
        self._agg: Dict[str, List[float]] = {}
        self._events: Optional[Deque[Dict[str, Any]]] = (
            deque(maxlen=self.span_ring) if level == "full" else None
        )
        self._appended = 0
        self._depth = 0
        self._pid = os.getpid()
        self._tid = threading.get_ident() % 1_000_000
        self._epoch = time.perf_counter()
        self._flush_path = os.environ.get(METRICS_JSONL_ENV_VAR, "").strip() or None
        raw_every = os.environ.get(METRICS_EVERY_ENV_VAR, "").strip()
        try:
            self._flush_every = int(raw_every) if raw_every else 0
        except ValueError:
            raise ValueError(
                f"invalid {METRICS_EVERY_ENV_VAR}={raw_every!r}; expected an integer"
            )
        self._next_flush = self._flush_every

    @classmethod
    def build(cls, model: Optional[TelemetryModel] = None) -> Optional["Tracer"]:
        """The tracer for ``model`` after env overrides; ``None`` when off.

        ``model=None`` means "configured off" — the ``REPRO_TELEMETRY``
        variable can still force a tracer on (with the default ring),
        mirroring how ``REPRO_GUARD`` arms an unconfigured guard.
        """
        configured = model.level if model is not None else "off"
        effective = effective_telemetry_level(configured)
        if effective == "off":
            return None
        ring = model.span_ring if model is not None else DEFAULT_SPAN_RING
        return cls(effective, span_ring=ring)

    # ------------------------------------------------------------------ #
    # Spans
    # ------------------------------------------------------------------ #
    @contextmanager
    def span(
        self,
        name: str,
        slot: Optional[int] = None,
        hist: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator["Tracer"]:
        """Time one stage; exception-safe (the span closes on any exit).

        ``hist`` additionally feeds the wall duration into the named
        fixed-bucket latency histogram (e.g. the per-slot solve latency).
        """
        self._depth += 1
        start_wall = time.perf_counter()
        start_cpu = time.process_time()
        try:
            yield self
        finally:
            wall = time.perf_counter() - start_wall
            cpu = time.process_time() - start_cpu
            self._depth -= 1
            if hist is not None:
                self.metrics.histogram(hist).observe(wall)
            agg = self._agg.get(name)
            if agg is None:
                self._agg[name] = [1, wall, cpu]
            else:
                agg[0] += 1
                agg[1] += wall
                agg[2] += cpu
            if self._events is not None:
                event: Dict[str, Any] = {
                    "name": name,
                    "ts_us": (start_wall - self._epoch) * 1e6,
                    "dur_us": wall * 1e6,
                    "cpu_us": cpu * 1e6,
                    "pid": self._pid,
                    "tid": self._tid,
                    "depth": self._depth,
                }
                if slot is not None:
                    event["slot"] = slot
                if attrs:
                    event.update(attrs)
                self._events.append(event)
                self._appended += 1

    def span_events(self) -> List[Dict[str, Any]]:
        """The bounded ring's span events, oldest first (empty at ``light``)."""
        return [dict(event) for event in self._events] if self._events else []

    def tail(self, n: int = 64) -> List[Dict[str, Any]]:
        """The last ``n`` span events — what a crash bundle attaches."""
        if not self._events:
            return []
        events = list(self._events)
        return [dict(event) for event in events[-n:]]

    # ------------------------------------------------------------------ #
    # Metrics plumbing
    # ------------------------------------------------------------------ #
    def absorb(self, prefix: str, mapping: Optional[Mapping[str, Any]]) -> None:
        """Fold a summable diagnostics mapping into namespaced counters.

        Lets layer-internal tallies (Gibbs proposals, dual iterations,
        guard checks …) ride the metrics feed without double bookkeeping.
        Non-numeric values are skipped; keys are folded in sorted order.
        """
        if not mapping:
            return
        for key in sorted(mapping):
            value = mapping[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.metrics.counter(f"{prefix}.{key}").inc(float(value))

    def maybe_flush(self, slot: int) -> None:
        """Append a JSONL metrics snapshot when the flush period elapses.

        Driven by ``REPRO_METRICS_JSONL`` / ``REPRO_METRICS_EVERY`` (set
        by ``repro serve --metrics-out/--metrics-every``); a no-op when
        unconfigured.  Each line is one atomic append, so concurrent
        workers interleave whole snapshots, never partial lines.
        """
        self.slots_seen = max(self.slots_seen, slot + 1)
        if not self._flush_path or self._flush_every <= 0:
            return
        if slot + 1 < self._next_flush:
            return
        self._next_flush += self._flush_every
        from repro.telemetry.export import append_jsonl_snapshot

        append_jsonl_snapshot(
            self._flush_path,
            {"slot": slot, "pid": self._pid, "stats": self.stats()},
        )

    # ------------------------------------------------------------------ #
    # The summable stats mapping (diagnostics["telemetry"])
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """The flat dotted-key mapping; every value merges by sum."""
        out: Dict[str, float] = {"spans": 0, "tracers": 1}
        for name in sorted(self._agg):
            count, wall, cpu = self._agg[name]
            out[f"span.{name}.count"] = count
            out[f"span.{name}.wall_s"] = wall
            out[f"span.{name}.cpu_s"] = cpu
            out["spans"] += count
        if self._events is not None:
            out["span_ring_dropped"] = self._appended - len(self._events)
        out.update(self.metrics.snapshot())
        return out


#: A shared no-op context — reused so the off path allocates nothing.
_NULL_SPAN: ContextManager[None] = nullcontext()


def maybe_span(
    tracer: Optional[Tracer], name: str, slot: Optional[int] = None, **attrs: Any
) -> ContextManager[Any]:
    """``tracer.span(...)`` or a shared no-op context when telemetry is off.

    The single-call-site idiom the simulators use so the ``off`` path
    stays allocation-free and branch-cheap.
    """
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, slot=slot, **attrs)


def merge_telemetry_stats(stats_mappings) -> Optional[Dict[str, float]]:
    """Sum telemetry stat mappings key-wise, iterating keys in sorted order.

    The sorted iteration pins the float summation order, so the merged
    mapping is bit-identical for any worker layout or trial interleaving
    — the same discipline as the serving shard merge.  ``None`` when no
    mapping is present (e.g. records loaded from pre-telemetry JSON).
    """
    totals: Dict[str, float] = {}
    found = False
    for mapping in stats_mappings:
        if not isinstance(mapping, Mapping):
            continue
        found = True
        for key in sorted(mapping):
            totals[key] = totals.get(key, 0) + mapping[key]
    return totals if found else None


def events_to_stats(events) -> Dict[str, float]:
    """Aggregate raw span events back into the flat stats mapping shape.

    Used where only the event ring survived (a crash bundle's attached
    trace) but a :func:`summarize_spans` profile is wanted.  Keys come
    out in the same sorted order :meth:`Tracer.stats` produces.
    """
    agg: Dict[str, List[float]] = {}
    for event in events or ():
        if not isinstance(event, Mapping):
            continue
        name = event.get("name")
        if not isinstance(name, str):
            continue
        entry = agg.setdefault(name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += float(event.get("dur_us", 0) or 0) / 1e6
        entry[2] += float(event.get("cpu_us", 0) or 0) / 1e6
    stats: Dict[str, float] = {"spans": 0, "tracers": 1 if agg else 0}
    for name in sorted(agg):
        count, wall, cpu = agg[name]
        stats[f"span.{name}.count"] = count
        stats[f"span.{name}.wall_s"] = wall
        stats[f"span.{name}.cpu_s"] = cpu
        stats["spans"] += count
    return stats


def summarize_spans(stats: Optional[Mapping[str, float]]) -> List[Dict[str, Any]]:
    """Per-span profile rows from a (merged) stats mapping, hottest first.

    Each row carries ``name``, ``count``, ``wall_s``, ``cpu_s``,
    ``mean_us`` and ``share`` (fraction of total span wall time) — the
    table behind ``repro top`` and the replay trace summary.
    """
    if not stats:
        return []
    rows: List[Dict[str, Any]] = []
    total_wall = 0.0
    for key, value in stats.items():
        if key.startswith("span.") and key.endswith(".wall_s"):
            total_wall += float(value)
    for key in stats:
        if not (key.startswith("span.") and key.endswith(".count")):
            continue
        name = key[len("span."):-len(".count")]
        count = float(stats[key])
        wall = float(stats.get(f"span.{name}.wall_s", 0.0))
        cpu = float(stats.get(f"span.{name}.cpu_s", 0.0))
        rows.append(
            {
                "name": name,
                "count": count,
                "wall_s": wall,
                "cpu_s": cpu,
                "mean_us": (wall / count * 1e6) if count else 0.0,
                "share": (wall / total_wall) if total_wall > 0 else 0.0,
            }
        )
    rows.sort(key=lambda row: (-row["wall_s"], row["name"]))
    return rows
