"""Tests for the repro.api policy registry."""

import pytest

from repro import api
from repro.api.registry import PolicyRegistry, UnknownPolicyError
from repro.core.baselines import MyopicAdaptivePolicy, MyopicFixedPolicy
from repro.core.oscar import OscarPolicy
from repro.core.policy import RoutingPolicy
from repro.experiments.config import ExperimentConfig


class TestDefaultRegistry:
    def test_builtin_policies_registered(self):
        names = api.available_policies()
        assert {"oscar", "myopic-adaptive", "myopic-fixed",
                "unconstrained", "shortest-uniform"} <= set(names)

    def test_make_policy_types(self):
        assert isinstance(api.make_policy("oscar"), OscarPolicy)
        assert isinstance(api.make_policy("myopic-adaptive"), MyopicAdaptivePolicy)
        assert isinstance(api.make_policy("myopic-fixed"), MyopicFixedPolicy)

    def test_aliases_and_spelling(self):
        assert isinstance(api.make_policy("ma"), MyopicAdaptivePolicy)
        assert isinstance(api.make_policy("MF"), MyopicFixedPolicy)
        assert isinstance(api.make_policy("Myopic_Fixed"), MyopicFixedPolicy)

    def test_kwargs_override(self):
        policy = api.make_policy("oscar", total_budget=42.0, trade_off_v=7.0)
        assert policy.total_budget == 42.0
        assert policy.trade_off_v == 7.0

    def test_config_supplies_defaults(self):
        config = ExperimentConfig.tiny()
        policy = api.make_policy("oscar", config)
        reference = config.make_oscar()
        assert policy.total_budget == reference.total_budget
        assert policy.horizon == reference.horizon
        assert policy.gibbs_iterations == reference.gibbs_iterations

    def test_defaults_are_paper_scale_without_config(self):
        policy = api.make_policy("oscar")
        assert policy.total_budget == 5000.0
        assert policy.horizon == 200

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            api.make_policy("oscat")
        message = str(excinfo.value)
        assert "oscat" in message
        assert "oscar" in message  # close-match suggestion

    def test_unknown_policy_error_is_a_key_error(self):
        with pytest.raises(KeyError):
            api.make_policy("no-such-policy")

    def test_contains(self):
        assert "oscar" in api.default_registry
        assert "ma" in api.default_registry
        assert "bogus" not in api.default_registry

    def test_describe_has_one_line_per_policy(self):
        described = api.default_registry.describe()
        assert set(described) == set(api.available_policies())
        assert all(isinstance(text, str) for text in described.values())


class _CountingPolicy(RoutingPolicy):
    name = "counting"

    def reset(self, graph, horizon):
        self.horizon = horizon

    def decide(self, context, seed=None):  # pragma: no cover - not simulated here
        raise NotImplementedError


class TestCustomRegistration:
    def test_decorator_registration(self):
        registry = PolicyRegistry()

        @registry.register("counting", aliases=("count",))
        def make_counting(config, **kwargs):
            return _CountingPolicy()

        assert isinstance(registry.make("counting"), _CountingPolicy)
        assert isinstance(registry.make("count"), _CountingPolicy)

    def test_class_registration_injects_config_fields(self):
        registry = PolicyRegistry()
        registry.register("oscar", OscarPolicy)
        config = ExperimentConfig.tiny()
        policy = registry.make("oscar", config)
        assert policy.total_budget == config.total_budget
        assert policy.horizon == config.horizon

    def test_duplicate_registration_rejected(self):
        registry = PolicyRegistry()
        registry.register("oscar", OscarPolicy)
        with pytest.raises(ValueError):
            registry.register("oscar", OscarPolicy)
        registry.register("oscar", OscarPolicy, overwrite=True)  # explicit wins

    def test_unregister_removes_aliases(self):
        registry = PolicyRegistry()
        registry.register("oscar", OscarPolicy, aliases=("o",))
        registry.unregister("o")
        assert "oscar" not in registry
        assert "o" not in registry

    def test_non_callable_rejected(self):
        registry = PolicyRegistry()
        with pytest.raises(TypeError):
            registry.register("thing", 42)

    def test_registered_policy_usable_in_scenario(self):
        name = "test-registry-lineup"
        if name in api.default_registry:
            api.default_registry.unregister(name)

        @api.register_policy(name)
        def make_shortest(config, **kwargs):
            return api.make_policy("shortest-uniform", config, **kwargs)

        try:
            scenario = (
                api.Scenario.tiny()
                .with_workload(horizon=4)
                .with_trials(1)
                .with_policies("oscar", name)
            )
            record = scenario.run()
            assert record.lineup == ["OSCAR", "ShortestUniform"]
        finally:
            api.default_registry.unregister(name)
