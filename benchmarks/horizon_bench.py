"""Tracked benchmark of horizon-compiled solving vs. the recompile-per-slot kernel.

Measures the end-to-end wall clock of the Figure-3 time-evolving run (OSCAR
vs. MA vs. MF over a whole horizon, Monte-Carlo realisation on) with the
kernel structure cache enabled (``kernel_cache=True``, the default: one
compiled structure per topology, re-bound every slot, warm-start duals
carried slot-to-slot, batched exhaustive enumeration) and disabled
(``kernel_cache=False``: the PR-3-era kernel that recompiles its flat arrays
every slot).  Reports

* **fig3 end-to-end** — wall clock and speedup of the cached over the
  recompile path, asserting their summary tables are byte-identical;
* **slots/sec** — horizon throughput (slots × policies / second) of both
  paths, the headline number of the ROADMAP's "as fast as the hardware
  allows" goal;
* **kernel stats** — structure compiles vs re-binds, solves, prune/memo/
  cache reuse over the cached run.

Writes the numbers to ``BENCH_horizon.json`` (``--output``); with ``--check
BASELINE.json`` it exits non-zero when the measured speedup falls below 80 %
of the committed baseline's speedup, or when the tables diverge — speedup
ratios are compared rather than absolute times so the check is stable across
machines.

Usage::

    PYTHONPATH=src python benchmarks/horizon_bench.py --output BENCH_horizon.json
    PYTHONPATH=src python benchmarks/horizon_bench.py --quick --check benchmarks/BENCH_horizon_quick.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import fig3_time_evolving
from repro.experiments.config import ExperimentConfig
from repro.network.store import default_topology_store
from repro.version import __version__

#: Regression threshold: fail when the speedup drops below this fraction of
#: the committed baseline's speedup.
REGRESSION_FRACTION = 0.8


def bench_config(quick: bool) -> ExperimentConfig:
    """The fig3 configuration under benchmark (ExperimentConfig.small scale)."""
    config = ExperimentConfig.small()
    if quick:
        config = config.with_overrides(horizon=16, trials=1)
    else:
        config = config.with_overrides(trials=1)
    return config


def run_fig3(config: ExperimentConfig, repeats: int):
    """Best-of-``repeats`` wall clock of one fig3 run; returns (s, tables, stats)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        # The topology store would hide the graph/trace build cost from the
        # second repetition onwards for both paths equally; clearing it keeps
        # every repetition a full, cold end-to-end run.
        default_topology_store.clear()
        started = time.perf_counter()
        result = fig3_time_evolving.run(config)
        best = min(best, time.perf_counter() - started)
    stats = None
    if result.comparison is not None:
        from repro.api import RunRecord

        stats = RunRecord.from_comparison(result.comparison).kernel_stats()
    return best, result.format_tables(), stats


def run_benchmarks(quick: bool) -> dict:
    config = bench_config(quick)
    repeats = 2 if quick else 3

    cached_s, cached_tables, cached_stats = run_fig3(config, repeats)
    recompile_s, recompile_tables, _ = run_fig3(
        config.with_overrides(kernel_cache=False), repeats
    )

    policies = 3  # OSCAR, MA, MF
    slot_units = config.horizon * config.trials * policies
    return {
        "meta": {
            "version": __version__,
            "quick": quick,
            "horizon": config.horizon,
            "trials": config.trials,
            "num_nodes": config.num_nodes,
            "python": sys.version.split()[0],
        },
        "fig3": {
            "cached_s": round(cached_s, 3),
            "recompile_s": round(recompile_s, 3),
            "speedup": round(recompile_s / cached_s, 3),
            "tables_identical": cached_tables == recompile_tables,
        },
        "throughput": {
            "cached_slots_per_s": round(slot_units / cached_s, 1),
            "recompile_slots_per_s": round(slot_units / recompile_s, 1),
        },
        "kernel": cached_stats,
    }


def check_against_baseline(results: dict, baseline: dict) -> list:
    """Regressions vs the committed baseline (see module docstring)."""
    failures = []
    baseline_quick = (baseline.get("meta") or {}).get("quick")
    if baseline_quick is not None and baseline_quick != results["meta"]["quick"]:
        return [
            "baseline was recorded with quick=%s but this run used quick=%s; "
            "compare like against like (benchmarks/BENCH_horizon_quick.json is "
            "the quick-mode baseline)" % (baseline_quick, results["meta"]["quick"])
        ]
    current = (results.get("fig3") or {}).get("speedup")
    reference = (baseline.get("fig3") or {}).get("speedup")
    if current is not None and reference is not None:
        if current < REGRESSION_FRACTION * reference:
            failures.append(
                f"fig3: horizon speedup {current:.2f}x fell below "
                f"{REGRESSION_FRACTION:.0%} of baseline {reference:.2f}x"
            )
    # slots/sec guard: the cached path must stay ahead of the recompile path
    # by the baseline's margin (a ratio, so machine-independent).
    cur = results.get("throughput") or {}
    ref = baseline.get("throughput") or {}
    if cur.get("recompile_slots_per_s") and ref.get("recompile_slots_per_s"):
        cur_ratio = cur["cached_slots_per_s"] / cur["recompile_slots_per_s"]
        ref_ratio = ref["cached_slots_per_s"] / ref["recompile_slots_per_s"]
        if cur_ratio < REGRESSION_FRACTION * ref_ratio:
            failures.append(
                f"throughput: cached/recompile slots-per-sec ratio "
                f"{cur_ratio:.2f} fell below {REGRESSION_FRACTION:.0%} of "
                f"baseline {ref_ratio:.2f}"
            )
    if not results["fig3"]["tables_identical"]:
        failures.append("fig3: cached and recompile summary tables diverged")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter horizon for CI smoke runs")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the benchmark JSON to this file")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail when the speedup regresses >20%% vs this baseline JSON")
    arguments = parser.parse_args(argv)

    results = run_benchmarks(quick=arguments.quick)
    print(json.dumps(results, indent=2))

    if arguments.output:
        Path(arguments.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"[written to {arguments.output}]", file=sys.stderr)

    if arguments.check:
        baseline = json.loads(Path(arguments.check).read_text())
        failures = check_against_baseline(results, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("[no regression against baseline]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
