"""The slot-based QDN simulator.

This is the evaluation harness of the paper: for every slot it presents the
policy with the slot's EC requests, resource availability and candidate
routes (all frozen in a :class:`~repro.workload.traces.WorkloadTrace` so
that different policies are compared on identical workloads), records the
decision's cost and analytic success probabilities, and optionally realises
each EC with the link-layer Monte-Carlo simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.policy import RoutingPolicy
from repro.core.problem import SlotContext
from repro.faults.model import FaultSchedule, FaultStats
from repro.guard import hooks as guard_hooks
from repro.guard.invariants import InvariantGuard
from repro.network.graph import QDNGraph
from repro.simulation.clock import SlotClock
from repro.simulation.link_layer import LinkLayerSimulator
from repro.simulation.physical import PhysicalModel
from repro.simulation.results import SimulationResult, SlotRecord
from repro.telemetry import hooks as telemetry_hooks
from repro.telemetry.tracer import TelemetryModel, Tracer, maybe_span
from repro.utils.rng import SeedLike, as_generator, spawn_rngs
from repro.workload.traces import WorkloadTrace

#: The two simulation backends: the paper's slotted abstraction and the
#: event-driven co-simulation (see :mod:`repro.simulation.eventsim`).
BACKEND_KINDS = ("slotted", "event")

#: Per-slot streaming hook: called with ``(policy_name, record)`` after every
#: simulated slot.  Returning ``False`` stops the run early (the result then
#: covers only the slots simulated so far); any other return value continues.
SlotCallback = Callable[[str, SlotRecord], Optional[bool]]


@dataclass
class SlottedSimulator:
    """Runs one policy over one frozen workload trace.

    Parameters
    ----------
    graph:
        The QDN.
    trace:
        The frozen workload (requests, availability, candidate routes).
    total_budget:
        The user's long-term budget ``C`` (only used for reporting —
        policies carry their own budget configuration).
    realize:
        Whether to also Monte-Carlo-realise every EC (adds the
        ``realized_*`` fields to the records).
    detailed_link_layer:
        Use the attempt-level physics simulation instead of per-edge
        Bernoulli draws when realising ECs (slower; mainly for validation
        and examples).
    physical:
        Optional :class:`~repro.simulation.physical.PhysicalModel`: when
        set, every realised EC additionally runs the physical delivery chain
        (purification, decoherence/cutoff, swapping) and the records carry
        delivered fidelities.  Requires ``realize=True``.  When ``None``
        (the default) nothing changes — the run consumes exactly the same
        random streams as before the physical layer existed.
    clock:
        Optional :class:`~repro.simulation.clock.SlotClock` used to stamp
        each record with its wall-clock slot boundaries (``slot_start_s`` /
        ``slot_end_s``); defaults to the graph's attempt schedule with no
        guard time.  The clock never affects outcomes on this backend —
        only the timestamps.
    faults:
        Optional precomputed :class:`~repro.faults.FaultSchedule`: the
        simulator consults it every slot.  In aware mode routes crossing a
        failed element leave the candidate sets before the policy decides
        (the policy sees the degraded topology without code changes); in
        blind mode the policy keeps routing into outages and the affected
        requests are forced to fail at realization time.  ``None`` (the
        default) changes nothing — fault-free runs consume exactly the
        historical random streams.
    """

    graph: QDNGraph
    trace: WorkloadTrace
    total_budget: float = 5000.0
    realize: bool = True
    detailed_link_layer: bool = False
    physical: Optional[PhysicalModel] = None
    clock: Optional[SlotClock] = None
    faults: Optional[FaultSchedule] = None
    guard_level: str = "off"
    telemetry: Optional[TelemetryModel] = None

    def run(
        self,
        policy: RoutingPolicy,
        seed: SeedLike = None,
        on_slot: Optional[SlotCallback] = None,
    ) -> SimulationResult:
        """Simulate ``policy`` over the whole trace and return its result.

        ``on_slot`` receives every :class:`SlotRecord` as it is produced;
        returning ``False`` from the callback stops the simulation early.
        """
        # Built fresh per run so guard counters are per-run; the ambient
        # activation lets the solver kernel reach the guard without new
        # plumbing.  ``None`` (level "off" after the REPRO_GUARD override)
        # keeps this method byte-for-byte on its historical path.  The
        # tracer follows the identical discipline under REPRO_TELEMETRY.
        guard = InvariantGuard.build(self.guard_level)
        tracer = Tracer.build(self.telemetry)
        with guard_hooks.activate(guard), telemetry_hooks.activate(tracer):
            return self._run_guarded(policy, seed, on_slot, guard, tracer)

    def _run_guarded(
        self,
        policy: RoutingPolicy,
        seed: SeedLike,
        on_slot: Optional[SlotCallback],
        guard: Optional[InvariantGuard],
        tracer: Optional[Tracer],
    ) -> SimulationResult:
        rng = as_generator(seed)
        engine = None
        if self.physical is not None:
            if not self.realize:
                raise ValueError("the physical layer requires realize=True")
            # A third stream is spawned only when the physical layer is on,
            # so disabled runs stay byte-identical to the historical ones.
            decision_rng, realization_rng, physical_rng = spawn_rngs(rng, 3)
            engine = self.physical.build_engine()
        else:
            decision_rng, realization_rng = spawn_rngs(rng, 2)
            physical_rng = None
        link_layer = LinkLayerSimulator(graph=self.graph, detailed=self.detailed_link_layer)
        clock = self.clock or SlotClock(attempts_per_slot=self.graph.attempts_per_slot)

        policy.reset(self.graph, self.trace.horizon)
        fault_stats = FaultStats() if self.faults is not None else None
        records: List[SlotRecord] = []
        for slot_trace in self.trace.slots:
            if guard is not None:
                guard.begin_slot(slot_trace.t)
            with maybe_span(tracer, "workload.candidates", slot=slot_trace.t):
                candidate_routes = {
                    request: tuple(self.trace.routes_for(request))
                    for request in slot_trace.requests
                }
            fault_state = None
            if self.faults is not None:
                with maybe_span(tracer, "faults.schedule", slot=slot_trace.t):
                    fault_state = self.faults.state_at(slot_trace.t)
                    fault_stats.observe_slot(self.faults, fault_state)
                    if self.faults.aware and fault_state:
                        filtered = self.faults.filter_routes(fault_state, candidate_routes)
                        fault_stats.requests_unservable += sum(
                            1
                            for request in slot_trace.requests
                            if candidate_routes[request] and not filtered[request]
                        )
                        candidate_routes = filtered
            context = SlotContext(
                t=slot_trace.t,
                graph=self.graph,
                snapshot=slot_trace.snapshot,
                requests=slot_trace.requests,
                candidate_routes=candidate_routes,
            )
            with maybe_span(
                tracer, "kernel.solve", slot=slot_trace.t, hist="kernel.solve_s"
            ):
                decision = policy.decide(context, seed=decision_rng)
            if not decision.respects_snapshot(slot_trace.snapshot):
                raise RuntimeError(
                    f"policy {policy.name!r} violated capacity constraints in slot {slot_trace.t}"
                )

            success_probabilities = tuple(
                decision.success_probability(self.graph, request)
                for request in decision.served_requests
            )
            realized: List[bool] = []
            fidelities: List[float] = []
            delivered: List[bool] = []
            delivered_fidelities: List[float] = []
            fidelity_served: List[bool] = []
            if self.realize:
                # One batched RNG draw realises every served request's route
                # for this slot (bit-identical to per-request realisation).
                items = []
                for request in decision.served_requests:
                    route = decision.route_for(request)
                    assert route is not None
                    items.append(
                        (
                            route,
                            {
                                key: decision.channels_for(request, key)
                                for key in route.edges
                            },
                        )
                    )
                with maybe_span(tracer, "link.realize", slot=slot_trace.t):
                    for realization in link_layer.realize_routes(
                        items, slot=slot_trace.t, seed=realization_rng
                    ):
                        realized.append(realization.succeeded)
                        fidelities.append(realization.fidelity)
                if fault_state:
                    # Requests routed across a failed element lose their
                    # entanglement regardless of the link draw.  The batched
                    # draw above already happened, so stream consumption is
                    # unchanged and the schedule alone decides the outcome.
                    # (A no-op in aware mode: filtered candidate sets mean
                    # no chosen route crosses a failed element.)
                    for index, request in enumerate(decision.served_requests):
                        route = decision.route_for(request)
                        if route is not None and fault_state.blocks_route(route):
                            fault_stats.requests_interrupted += 1
                            realized[index] = False
                            fidelities[index] = 0.0
                if engine is not None:
                    # The physical delivery chain consumes the link outcomes
                    # and its own spawned stream (shared by both engine
                    # implementations, which draw identically from it).
                    with maybe_span(tracer, "physical.chain", slot=slot_trace.t):
                        delivered, delivered_fidelities, fidelity_served = (
                            engine.realize_decision(
                                items, realized, len(decision.unserved),
                                seed=physical_rng,
                            )
                        )
                # Unserved requests trivially fail.
                realized.extend([False] * len(decision.unserved))
                fidelities.extend([0.0] * len(decision.unserved))

            queue_length: Optional[float] = None
            diagnostics = policy.diagnostics()
            history = diagnostics.get("queue_history")
            if isinstance(history, list) and history:
                queue_length = float(history[-1])

            if guard is not None:
                with maybe_span(tracer, "guard.check", slot=slot_trace.t):
                    guard.check_decision(context, decision, queue_length)
                    guard.check_objective(
                        decision.utility(self.graph), slot=slot_trace.t
                    )
                    guard.check_fidelities(
                        fidelities, slot=slot_trace.t, model=self.physical
                    )
                    if delivered_fidelities:
                        guard.check_fidelities(
                            delivered_fidelities,
                            slot=slot_trace.t,
                            model=self.physical,
                        )

            record = SlotRecord(
                t=slot_trace.t,
                num_requests=slot_trace.num_requests,
                num_served=decision.num_served,
                cost=decision.cost(),
                utility=decision.utility(self.graph),
                success_probabilities=success_probabilities,
                realized_successes=tuple(realized),
                realized_fidelities=tuple(fidelities),
                queue_length=queue_length,
                delivered_successes=tuple(delivered),
                delivered_fidelities=tuple(delivered_fidelities),
                fidelity_served=tuple(fidelity_served),
                slot_start_s=clock.slot_start(slot_trace.t),
                slot_end_s=clock.slot_end(slot_trace.t),
            )
            with maybe_span(tracer, "records.emit", slot=slot_trace.t):
                records.append(record)
                stop = on_slot is not None and on_slot(policy.name, record) is False
            if tracer is not None:
                tracer.slots_seen = max(tracer.slots_seen, slot_trace.t + 1)
            if stop:
                break

        diagnostics = policy.diagnostics()
        if engine is not None:
            diagnostics = engine.merge_diagnostics(diagnostics)
        if fault_stats is not None:
            diagnostics = dict(diagnostics)
            diagnostics["faults"] = fault_stats.finalize(self.faults)
        if guard is not None:
            guard.check_policy_final(policy)
            guard.check_physical_stats(diagnostics.get("physical"))
            if fault_stats is not None:
                guard.check_fault_stats(self.faults, diagnostics["faults"])
            diagnostics = dict(diagnostics)
            diagnostics["guard"] = guard.stats()
        if tracer is not None:
            # Fold layer-internal tallies into the metrics feed, then ship
            # the whole telemetry payload through diagnostics — the only
            # channel that crosses worker-pool process boundaries.
            tracer.absorb("kernel", diagnostics.get("kernel"))
            tracer.absorb("faults", diagnostics.get("faults"))
            tracer.absorb("guard", diagnostics.get("guard"))
            diagnostics = dict(diagnostics)
            diagnostics["telemetry"] = tracer.stats()
            spans = tracer.span_events()
            if spans:
                diagnostics["telemetry_spans"] = spans
        return SimulationResult(
            policy_name=policy.name,
            horizon=self.trace.horizon,
            total_budget=self.total_budget,
            records=tuple(records),
            diagnostics=diagnostics,
        )


def build_simulator(
    graph: QDNGraph,
    trace: WorkloadTrace,
    backend: str = "slotted",
    total_budget: float = 5000.0,
    realize: bool = True,
    detailed_link_layer: bool = False,
    physical: Optional[PhysicalModel] = None,
    timing=None,
    faults: Optional[FaultSchedule] = None,
    guard_level: str = "off",
    telemetry: Optional[TelemetryModel] = None,
):
    """Construct the simulator for ``backend`` (``"slotted"`` or ``"event"``).

    Both backends expose the same ``run(policy, seed, on_slot)`` interface
    and produce the same record schema, so every caller (``simulate_policies``,
    the api session, the study runner) dispatches through this one factory.
    ``timing`` is a :class:`~repro.simulation.eventsim.TimingModel`; its
    ``guard_time`` shapes the :class:`SlotClock` of *both* backends (the
    slotted backend only uses it for timestamps), while its latencies only
    exist on the event backend.  ``faults`` is an optional precomputed
    :class:`~repro.faults.FaultSchedule` both backends consult per slot.
    """
    if backend not in BACKEND_KINDS:
        raise ValueError(
            f"unknown simulation backend {backend!r}; choose from {', '.join(BACKEND_KINDS)}"
        )
    # Imported lazily: eventsim imports this module for SlottedSimulator.
    from repro.simulation.eventsim import EventDrivenSimulator, TimingModel

    timing = timing or TimingModel()
    clock = SlotClock(
        attempts_per_slot=graph.attempts_per_slot, guard_time=timing.guard_time
    )
    if backend == "event":
        return EventDrivenSimulator(
            graph=graph,
            trace=trace,
            total_budget=total_budget,
            realize=realize,
            physical=physical,
            timing=timing,
            clock=clock,
            faults=faults,
            guard_level=guard_level,
            telemetry=telemetry,
        )
    return SlottedSimulator(
        graph=graph,
        trace=trace,
        total_budget=total_budget,
        realize=realize,
        detailed_link_layer=detailed_link_layer,
        physical=physical,
        clock=clock,
        faults=faults,
        guard_level=guard_level,
        telemetry=telemetry,
    )


def simulate_policies(
    graph: QDNGraph,
    trace: WorkloadTrace,
    policies: Sequence[RoutingPolicy],
    total_budget: float = 5000.0,
    realize: bool = True,
    seed: SeedLike = None,
    on_slot: Optional[SlotCallback] = None,
    physical: Optional[PhysicalModel] = None,
    backend: str = "slotted",
    timing=None,
    faults: Optional[FaultSchedule] = None,
    guard_level: str = "off",
    telemetry: Optional[TelemetryModel] = None,
) -> Dict[str, SimulationResult]:
    """Run several policies over the *same* trace and collect their results.

    Each policy gets its own independent random stream (for Gibbs sampling
    and EC realisation) derived from ``seed``, so results are reproducible
    yet uncorrelated across policies.  ``on_slot`` is forwarded to every
    policy's run (see :class:`SlottedSimulator`); ``physical`` switches on
    the physical delivery chain for every policy (each run gets its own
    fresh engine and spawned stream).  ``backend`` / ``timing`` select and
    configure the simulation backend (see :func:`build_simulator`);
    ``faults`` is shared by every policy, like the trace — outages hit the
    whole line-up identically.
    """
    simulator = build_simulator(
        graph,
        trace,
        backend=backend,
        total_budget=total_budget,
        realize=realize,
        physical=physical,
        timing=timing,
        faults=faults,
        guard_level=guard_level,
        telemetry=telemetry,
    )
    rngs = spawn_rngs(seed, len(list(policies)))
    results: Dict[str, SimulationResult] = {}
    for policy, policy_rng in zip(policies, rngs):
        results[policy.name] = simulator.run(policy, seed=policy_rng, on_slot=on_slot)
    return results
