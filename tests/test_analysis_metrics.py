"""Tests for repro.analysis.metrics and repro.analysis.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    jain_fairness_index,
    relative_improvement,
    success_rate_histogram,
    success_rate_quantiles,
)
from repro.analysis.stats import (
    aggregate_scalar,
    aggregate_series,
    confidence_interval,
    downsample,
)


class TestJainFairness:
    def test_equal_values_are_perfectly_fair(self):
        assert jain_fairness_index([0.7, 0.7, 0.7]) == pytest.approx(1.0)

    def test_single_winner_gives_one_over_n(self):
        assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_defined_as_fair(self):
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([0.5, -0.1])

    @given(values=st.lists(st.floats(0.01, 1.0), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, values):
        index = jain_fairness_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    def test_more_balanced_is_fairer(self):
        assert jain_fairness_index([0.5, 0.5]) > jain_fairness_index([0.9, 0.1])


class TestHistogramAndQuantiles:
    def test_fractions_sum_to_one(self):
        edges, fractions = success_rate_histogram([0.1, 0.5, 0.9, 0.95], bins=10)
        assert len(edges) == 11
        assert sum(fractions) == pytest.approx(1.0)

    def test_empty_input(self):
        _, fractions = success_rate_histogram([], bins=5)
        assert fractions == [0.0] * 5

    def test_values_land_in_correct_bins(self):
        edges, fractions = success_rate_histogram([0.05, 0.95, 0.96], bins=10)
        assert fractions[0] == pytest.approx(1 / 3)
        assert fractions[-1] == pytest.approx(2 / 3)

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            success_rate_histogram([0.5], bins=0)

    def test_quantiles(self):
        quantiles = success_rate_quantiles([0.1, 0.2, 0.3, 0.4, 0.5], quantiles=(0.5,))
        assert quantiles[0.5] == pytest.approx(0.3)

    def test_quantiles_empty(self):
        assert success_rate_quantiles([], quantiles=(0.5,)) == {0.5: 0.0}


class TestRelativeImprovement:
    def test_positive_improvement(self):
        assert relative_improvement(1.2, 1.0) == pytest.approx(0.2)

    def test_negative_improvement(self):
        assert relative_improvement(0.8, 1.0) == pytest.approx(-0.2)

    def test_zero_baseline(self):
        assert relative_improvement(0.0, 0.0) == 0.0
        assert relative_improvement(1.0, 0.0) == float("inf")


class TestStats:
    def test_confidence_interval_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0]
        low, high = confidence_interval(values)
        assert low <= np.mean(values) <= high

    def test_confidence_interval_single_value(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)

    def test_confidence_interval_identical_values(self):
        assert confidence_interval([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_confidence_interval_invalid_inputs(self):
        with pytest.raises(ValueError):
            confidence_interval([])
        with pytest.raises(ValueError):
            confidence_interval([1.0], confidence=1.5)

    def test_aggregate_scalar(self):
        aggregate = aggregate_scalar([1.0, 2.0, 3.0])
        assert aggregate.mean == pytest.approx(2.0)
        assert aggregate.count == 3
        assert aggregate.low <= 2.0 <= aggregate.high

    def test_aggregate_scalar_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_scalar([])

    def test_aggregate_series(self):
        means, stds = aggregate_series([[1.0, 2.0, 3.0], [3.0, 4.0, 5.0]])
        assert means == [2.0, 3.0, 4.0]
        assert all(s == pytest.approx(np.sqrt(2.0)) for s in stds)

    def test_aggregate_series_truncates_to_shortest(self):
        means, _ = aggregate_series([[1.0, 2.0, 3.0], [1.0, 2.0]])
        assert len(means) == 2

    def test_aggregate_series_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_series([])

    def test_downsample(self):
        series = list(range(100))
        sampled = downsample(series, 5)
        assert len(sampled) == 5
        assert sampled[0] == 0 and sampled[-1] == 99

    def test_downsample_short_series_unchanged(self):
        assert downsample([1.0, 2.0], 10) == [1.0, 2.0]

    def test_downsample_invalid_points(self):
        with pytest.raises(ValueError):
            downsample([1.0], 0)
