"""Supervised process pools: detect dead workers, retry with backoff.

Every parallel layer of the repository (Session trials, the Study work
queue, serving shards) used to submit work to a bare
``ProcessPoolExecutor``: one OOM-killed or segfaulted worker poisoned the
pool and the whole run died with ``BrokenProcessPool``; a *hung* worker
was even worse — ``future.result()`` blocked forever.

:class:`PoolSupervisor` wraps the executor with a retry loop:

* a broken pool (dead worker) or a missed deadline kills and rebuilds the
  pool, then resubmits exactly the unfinished tasks;
* retries back off exponentially (capped), and give up with
  :class:`WorkerPoolError` after ``max_retries`` rounds;
* ordinary exceptions raised *by the task function* still propagate
  immediately — the supervisor only retries infrastructure failures.

Because every task in this repository is a pure function of its arguments
(work units re-derive their RNG streams from seeds), a retried task
returns byte-identical results, so supervision never perturbs outputs.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class WorkerPoolError(RuntimeError):
    """A task kept losing its worker after the configured retries."""


class PoolSupervisor:
    """A retrying wrapper around one :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Pool size.
    max_retries:
        How many recovery rounds a single task may survive before the
        supervisor gives up.
    backoff_s / backoff_cap_s:
        Capped exponential delay between recovery rounds
        (``min(backoff_s * 2**(round-1), backoff_cap_s)``).
    timeout_s:
        Optional *progress* deadline: if no task completes for this many
        seconds the outstanding workers are presumed hung, killed, and the
        unfinished tasks retried.  ``None`` disables the deadline.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(
        self,
        max_workers: int,
        *,
        max_retries: int = 3,
        backoff_s: float = 0.25,
        backoff_cap_s: float = 4.0,
        timeout_s: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.max_workers = int(max_workers)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.timeout_s = timeout_s
        self._sleep = sleep
        self._pool: Optional[ProcessPoolExecutor] = None
        self._recoveries = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def recoveries(self) -> int:
        """Number of recovery rounds (pool rebuilds) performed so far."""
        return self._recoveries

    def __enter__(self) -> "PoolSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Shut the pool down (if one is alive)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down without waiting, terminating live workers."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # ``_processes`` is CPython-internal; guard with getattr so an
        # implementation without it degrades to plain shutdown.
        processes = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes.values():
            if process.is_alive():
                process.terminate()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, fn: Callable, tasks: Sequence[Tuple]) -> List[object]:
        """Run ``fn(*task)`` for every task; results in task order."""
        results: Dict[int, object] = {}
        for index, result in self.run_unordered(fn, tasks):
            results[index] = result
        return [results[index] for index in range(len(results))]

    def run_unordered(
        self, fn: Callable, tasks: Sequence[Tuple]
    ) -> Iterator[Tuple[int, object]]:
        """Yield ``(task_index, result)`` as tasks complete, surviving
        worker deaths and (when ``timeout_s`` is set) hangs."""
        pending: Dict[int, Tuple] = {
            index: tuple(task) for index, task in enumerate(tasks)
        }
        attempts: Dict[int, int] = {index: 0 for index in pending}
        while pending:
            pool = self._ensure_pool()
            future_map = {
                pool.submit(fn, *pending[index]): index
                for index in sorted(pending)
            }
            broken = False
            outstanding = set(future_map)
            while outstanding:
                done, outstanding = wait(
                    outstanding, timeout=self.timeout_s,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Progress deadline missed: the remaining workers are
                    # presumed hung.  Fall into the recovery path.
                    broken = True
                    break
                for future in done:
                    index = future_map[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    pending.pop(index)
                    yield index, result
                if broken:
                    break
            if broken and pending:
                self._recover(pending, attempts)
            elif broken:
                # Every task actually finished; just replace the dead pool.
                self._kill_pool()

    def _recover(self, pending: Dict[int, Tuple], attempts: Dict[int, int]) -> None:
        """Kill the pool, account a retry round, back off (or give up)."""
        self._kill_pool()
        round_number = 0
        for index in pending:
            attempts[index] += 1
            round_number = max(round_number, attempts[index])
        exhausted = sorted(
            index for index in pending if attempts[index] > self.max_retries
        )
        if exhausted:
            raise WorkerPoolError(
                f"task(s) {exhausted} lost their worker "
                f"{self.max_retries + 1} times; giving up"
            )
        self._recoveries += 1
        delay = min(self.backoff_s * (2.0 ** (round_number - 1)), self.backoff_cap_s)
        if delay > 0:
            self._sleep(delay)
