"""Benchmark: Figure 6 — impact of the network size (average degree held ≈ 4).

Paper findings reproduced: EC success rates decline as the network grows
(routes get longer for the same budget) and OSCAR stays ahead of MF at every
size.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig6_network_size


@pytest.mark.benchmark(group="fig6")
def test_fig6_network_size_sweep(benchmark, parameter_sweep_config):
    sizes = (8, 12, 16)
    result = benchmark.pedantic(
        fig6_network_size.run,
        kwargs={"config": parameter_sweep_config, "sizes": sizes, "seed": 7},
        rounds=1,
        iterations=1,
    )

    # OSCAR dominates MF at every network size.
    for oscar, mf in zip(result.success_rate["OSCAR"], result.success_rate["MF"]):
        assert oscar >= mf - 0.02

    # Larger networks do not get easier: the largest size is no better than
    # the smallest for OSCAR (longer routes under the same budget).
    oscar_rates = result.success_rate["OSCAR"]
    assert oscar_rates[-1] <= oscar_rates[0] + 0.03

    print()
    print(result.format_tables())
