"""The Quantum Data Network graph model.

The QDN is an undirected graph ``G = <V, E>`` (paper, Sec. III-A).  Every
quantum node ``v`` owns ``Q_v`` qubits of quantum memory and every edge ``e``
owns ``W_e`` quantum channels (physical fibres).  The *available* amounts in
a given slot, ``Q_t^v`` and ``W_t^e``, can be smaller because other users
occupy part of the hardware; availability snapshots are produced by the
resource processes in :mod:`repro.network.resources`.

Edges are identified by a canonical, order-independent :data:`EdgeKey` so
that allocations, capacities and probabilities can be stored in plain
dictionaries without worrying about ``(u, v)`` versus ``(v, u)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

import networkx as nx

from repro.network.channels import (
    DEFAULT_ATTEMPTS_PER_SLOT,
    multi_channel_success,
    per_slot_success,
)
from repro.utils.validation import check_non_negative, check_positive, check_probability

NodeName = Hashable
EdgeKey = Tuple[Hashable, Hashable]


def edge_key(u: NodeName, v: NodeName) -> EdgeKey:
    """Canonical, order-independent identifier of the undirected edge ``{u, v}``."""
    if u == v:
        raise ValueError(f"self-loop edges are not allowed (node {u!r})")
    a, b = sorted((u, v), key=repr)
    return (a, b)


@dataclass(frozen=True)
class QuantumNode:
    """A quantum node: either a quantum computer (QC) or a quantum repeater (QR)."""

    name: NodeName
    qubit_capacity: int
    position: Optional[Tuple[float, float]] = None
    is_repeater: bool = False

    def __post_init__(self) -> None:
        if self.qubit_capacity < 0:
            raise ValueError(
                f"qubit_capacity must be non-negative, got {self.qubit_capacity}"
            )


@dataclass(frozen=True)
class QuantumEdge:
    """A quantum edge: a bundle of physical quantum channels between two nodes."""

    u: NodeName
    v: NodeName
    channel_capacity: int
    length: float = 1.0
    attempt_success: float = 2.0e-4

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop edges are not allowed (node {self.u!r})")
        if self.channel_capacity < 0:
            raise ValueError(
                f"channel_capacity must be non-negative, got {self.channel_capacity}"
            )
        check_non_negative(self.length, "length")
        check_probability(self.attempt_success, "attempt_success")

    @property
    def key(self) -> EdgeKey:
        """Canonical identifier of this edge."""
        return edge_key(self.u, self.v)


@dataclass(frozen=True)
class ResourceSnapshot:
    """Per-slot availability of qubits and channels (``Q_t^v`` and ``W_t^e``)."""

    qubits: Mapping[NodeName, int]
    channels: Mapping[EdgeKey, int]

    def available_qubits(self, node: NodeName) -> int:
        """Available qubits at ``node`` in this slot."""
        return int(self.qubits[node])

    def available_channels(self, key: EdgeKey) -> int:
        """Available channels on the edge identified by ``key`` in this slot."""
        return int(self.channels[key])

    def restricted_to(
        self, nodes: Iterable[NodeName], edges: Iterable[EdgeKey]
    ) -> "ResourceSnapshot":
        """A snapshot containing only the given nodes and edges."""
        node_set = set(nodes)
        edge_set = set(edges)
        return ResourceSnapshot(
            qubits={n: q for n, q in self.qubits.items() if n in node_set},
            channels={e: w for e, w in self.channels.items() if e in edge_set},
        )


class QDNGraph:
    """The quantum data network: nodes, edges, capacities and link physics.

    The class is a thin, domain-specific wrapper around
    :class:`networkx.Graph`; the underlying graph is exposed via
    :attr:`nx_graph` for algorithms (shortest paths, connectivity) while the
    wrapper keeps capacities, lengths and per-attempt probabilities strongly
    typed and validated.
    """

    def __init__(self, attempts_per_slot: int = DEFAULT_ATTEMPTS_PER_SLOT) -> None:
        check_positive(attempts_per_slot, "attempts_per_slot")
        self._graph = nx.Graph()
        self._nodes: Dict[NodeName, QuantumNode] = {}
        self._edges: Dict[EdgeKey, QuantumEdge] = {}
        self._attempts_per_slot = int(attempts_per_slot)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: QuantumNode) -> None:
        """Add a quantum node; replaces any existing node with the same name."""
        self._nodes[node.name] = node
        self._graph.add_node(node.name)

    def add_edge(self, edge: QuantumEdge) -> None:
        """Add a quantum edge; both endpoints must already exist."""
        for endpoint in (edge.u, edge.v):
            if endpoint not in self._nodes:
                raise KeyError(f"cannot add edge: node {endpoint!r} not in graph")
        self._edges[edge.key] = edge
        self._graph.add_edge(*edge.key)

    def remove_edge(self, u: NodeName, v: NodeName) -> None:
        """Remove the edge ``{u, v}`` (raises ``KeyError`` if absent)."""
        key = edge_key(u, v)
        if key not in self._edges:
            raise KeyError(f"edge {key} not in graph")
        del self._edges[key]
        self._graph.remove_edge(*key)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def nx_graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph` (read-only by convention)."""
        return self._graph

    @property
    def attempts_per_slot(self) -> int:
        """Number of entanglement attempts per channel per slot (paper: 4000)."""
        return self._attempts_per_slot

    @property
    def nodes(self) -> List[NodeName]:
        """Node names, in insertion order."""
        return list(self._nodes.keys())

    @property
    def edges(self) -> List[EdgeKey]:
        """Canonical edge keys, in insertion order."""
        return list(self._edges.keys())

    def __contains__(self, name: NodeName) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: NodeName) -> QuantumNode:
        """The :class:`QuantumNode` with the given name."""
        return self._nodes[name]

    def edge(self, u: NodeName, v: NodeName = None) -> QuantumEdge:
        """The :class:`QuantumEdge` between ``u`` and ``v``.

        Also accepts a single :data:`EdgeKey` argument for convenience.
        """
        if v is None:
            key = u  # type: ignore[assignment]
        else:
            key = edge_key(u, v)
        return self._edges[key]

    def has_edge(self, u: NodeName, v: NodeName) -> bool:
        """Whether an edge exists between ``u`` and ``v``."""
        if u == v:
            return False
        return edge_key(u, v) in self._edges

    def neighbors(self, name: NodeName) -> List[NodeName]:
        """Neighbors of ``name``."""
        return list(self._graph.neighbors(name))

    def degree(self, name: NodeName) -> int:
        """Degree of ``name``."""
        return int(self._graph.degree(name))

    def average_degree(self) -> float:
        """Average node degree of the network."""
        if len(self._nodes) == 0:
            return 0.0
        return 2.0 * len(self._edges) / len(self._nodes)

    def is_connected(self) -> bool:
        """Whether the network is a single connected component."""
        if len(self._nodes) == 0:
            return False
        return nx.is_connected(self._graph)

    def edges_incident(self, name: NodeName) -> List[EdgeKey]:
        """Canonical keys of every edge incident to ``name``."""
        return [edge_key(name, other) for other in self._graph.neighbors(name)]

    def iter_edge_objects(self) -> Iterator[QuantumEdge]:
        """Iterate over the :class:`QuantumEdge` objects."""
        return iter(self._edges.values())

    # ------------------------------------------------------------------ #
    # Capacities and physics
    # ------------------------------------------------------------------ #
    def qubit_capacity(self, name: NodeName) -> int:
        """Hardware qubit capacity ``Q_v`` of node ``name``."""
        return self._nodes[name].qubit_capacity

    def channel_capacity(self, key: EdgeKey) -> int:
        """Hardware channel capacity ``W_e`` of the edge identified by ``key``."""
        return self._edges[key].channel_capacity

    def attempt_success(self, key: EdgeKey) -> float:
        """Per-attempt success probability ``p̃_e`` of the edge."""
        return self._edges[key].attempt_success

    def slot_success(self, key: EdgeKey, attempts: Optional[int] = None) -> float:
        """Per-slot, single-channel success probability ``p_e`` of the edge."""
        if attempts is None:
            attempts = self._attempts_per_slot
        return per_slot_success(self._edges[key].attempt_success, attempts)

    def link_success(
        self, key: EdgeKey, channels: float, attempts: Optional[int] = None
    ) -> float:
        """Edge success probability ``P_e(n_e)`` with ``channels`` channels (Eq. 1)."""
        return multi_channel_success(self.slot_success(key, attempts), channels)

    def min_slot_success(self) -> float:
        """``p_min = min_e p_e`` (used by the theoretical bounds)."""
        if not self._edges:
            raise ValueError("graph has no edges")
        return min(self.slot_success(key) for key in self._edges)

    def euclidean_length(self, u: NodeName, v: NodeName) -> float:
        """Euclidean distance between two placed nodes (requires positions)."""
        pu = self._nodes[u].position
        pv = self._nodes[v].position
        if pu is None or pv is None:
            raise ValueError("both nodes must have positions to compute distance")
        return math.dist(pu, pv)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def full_snapshot(self) -> ResourceSnapshot:
        """A snapshot in which every resource is fully available."""
        return ResourceSnapshot(
            qubits={name: node.qubit_capacity for name, node in self._nodes.items()},
            channels={key: e.channel_capacity for key, e in self._edges.items()},
        )

    def scaled_copy(self, qubit_scale: float = 1.0, channel_scale: float = 1.0) -> "QDNGraph":
        """A copy of the graph with capacities scaled (and floored at zero).

        Handy for what-if dimensioning studies and for tests.
        """
        check_non_negative(qubit_scale, "qubit_scale")
        check_non_negative(channel_scale, "channel_scale")
        clone = QDNGraph(attempts_per_slot=self._attempts_per_slot)
        for node in self._nodes.values():
            clone.add_node(
                replace(node, qubit_capacity=int(node.qubit_capacity * qubit_scale))
            )
        for edge in self._edges.values():
            clone.add_edge(
                replace(edge, channel_capacity=int(edge.channel_capacity * channel_scale))
            )
        return clone

    def describe(self) -> str:
        """A short human-readable description of the network."""
        return (
            f"QDNGraph(nodes={len(self._nodes)}, edges={len(self._edges)}, "
            f"avg_degree={self.average_degree():.2f}, "
            f"attempts_per_slot={self._attempts_per_slot})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
