"""End-to-end fault-injection tests: byte-identity, recovery, degradation.

The fault subsystem's standing contracts, exercised through the public
facade:

* faults disabled ⇒ results and diagnostics are exactly the historical
  ones (no new keys, no extra RNG draws);
* same seed ⇒ same fault schedule ⇒ byte-identical records across
  serial/parallel execution and across worker deaths;
* the slotted and event backends agree on the fault accounting;
* the degradation ladder and checkpoint/resume paths are deterministic.
"""

import json
import os

import pytest

from repro import api
from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import result_to_dict
from repro.serving.scheduler import ServingSimulator
from repro.utils.rng import derive_seed


def fault_scenario(trials=2, aware=True, **overrides):
    """A tiny fault-injected OSCAR scenario (deterministic)."""
    scenario = api.Scenario.tiny().with_policies("oscar").with_trials(trials)
    parameters = dict(edge_mtbf=20.0, node_mtbf=60.0, mttr=4.0, aware=aware)
    parameters.update(overrides)
    return scenario.with_faults(**parameters)


def record_payload(record):
    """The result payload only (meta carries worker counts and timings)."""
    payload = record.to_dict()
    payload.pop("meta", None)
    return json.dumps(payload, sort_keys=True)


class TestFaultFreeIdentity:
    def test_disabled_faults_leave_diagnostics_untouched(self):
        record = api.Scenario.tiny().with_policies("oscar").run()
        assert record.fault_stats() is None
        for trial in record.trials:
            for result in trial.values():
                assert "faults" not in result.diagnostics

    def test_with_faults_false_matches_plain_run(self):
        plain = api.Scenario.tiny().with_policies("oscar").run()
        disabled = (
            api.Scenario.tiny()
            .with_policies("oscar")
            .with_faults(enabled=False)
            .run()
        )
        assert record_payload(plain) == record_payload(disabled)


class TestFaultInjectedRuns:
    def test_fault_stats_populated(self):
        record = fault_scenario().run()
        stats = record.fault_stats()
        assert stats is not None
        assert stats["slots"] > 0
        assert stats["element_slots"] > 0
        assert stats["edge_failures"] > 0
        assert api.fault_availability(stats) < 1.0

    def test_serial_parallel_byte_identity(self):
        scenario = fault_scenario(trials=3)
        serial = api.run_scenario(scenario, workers=1)
        parallel = api.run_scenario(scenario, workers=2)
        assert record_payload(serial) == record_payload(parallel)

    def test_backends_agree_on_fault_accounting(self):
        def run(backend):
            config = ExperimentConfig.tiny().with_overrides(
                backend=backend,
                trials=2,
                fault_enabled=True,
                fault_edge_mtbf=20.0,
                fault_mttr=4.0,
            )
            scenario = api.Scenario.from_config(config).with_policies("oscar")
            return scenario.run().fault_stats()

        slotted = run("slotted")
        event = run("event")
        assert slotted == event

    def test_blind_mode_interrupts_served_requests(self):
        aware = fault_scenario(trials=2, aware=True).run().fault_stats()
        blind = fault_scenario(trials=2, aware=False).run().fault_stats()
        # Identical schedules (same seed), opposite degradation modes.
        for key in ("slots", "element_slots", "down_element_slots", "edge_failures"):
            assert aware[key] == blind[key]
        assert aware["requests_interrupted"] == 0
        assert blind["requests_unservable"] == 0

    def test_multiuser_lineup_rejected(self):
        scenario = fault_scenario().with_users(
            api.UserSpec(name="tenant", policy="oscar")
        )
        with pytest.raises(ValueError, match="unsupported combination"):
            scenario.run()


# --------------------------------------------------------------------------- #
# Worker-death recovery (module-scope wrappers so pool workers can pickle
# them; the marker file makes only the first attempt die).
# --------------------------------------------------------------------------- #
_KILL_MARKER = None


def _trial_killing_worker(scenario, trial):
    from repro.api import session

    if not os.path.exists(_KILL_MARKER):
        open(_KILL_MARKER, "w").close()
        os._exit(1)
    return session.execute_trial(scenario, trial, on_slot=None)


def _shard_killing_worker(shard, slots, joins, down=None):
    from repro.serving import scheduler

    if not os.path.exists(_KILL_MARKER):
        open(_KILL_MARKER, "w").close()
        os._exit(1)
    return scheduler._original_advance_shard(shard, slots, joins, down)


class TestWorkerDeathRecovery:
    def test_session_survives_trial_worker_death(self, tmp_path, monkeypatch):
        global _KILL_MARKER
        _KILL_MARKER = str(tmp_path / "trial-killed")
        scenario = fault_scenario(trials=3)
        baseline = api.run_scenario(scenario, workers=2)

        from repro.api import session as session_module

        monkeypatch.setattr(
            session_module, "_execute_trial_for_pool", _trial_killing_worker
        )
        survived = api.run_scenario(scenario, workers=2)
        assert survived.meta["worker_recoveries"] >= 1
        assert record_payload(survived) == record_payload(baseline)

    def test_serving_survives_shard_worker_death(self, tmp_path, monkeypatch):
        global _KILL_MARKER
        _KILL_MARKER = str(tmp_path / "shard-killed")
        config = ExperimentConfig.tiny().with_overrides(
            horizon=12,
            serving_enabled=True,
            serving_arrival_rate=1.0,
            serving_shards=2,
            serving_shard_workers=2,
            serving_shard_timeout_s=60.0,
        )

        def run_serving():
            graph = config.build_graph(seed=derive_seed(5, "graph", 0))
            simulator = ServingSimulator(
                graph=graph,
                model=config.serving_model(),
                horizon=config.horizon,
                total_budget=config.total_budget,
            )
            return simulator.run(seed=derive_seed(5, "serving", 0))

        baseline = run_serving()

        from repro.serving import scheduler as scheduler_module

        monkeypatch.setattr(
            scheduler_module,
            "_original_advance_shard",
            scheduler_module._advance_shard_for_pool,
            raising=False,
        )
        monkeypatch.setattr(
            scheduler_module, "_advance_shard_for_pool", _shard_killing_worker
        )
        survived = run_serving()

        survived_stats = dict(survived.diagnostics["serving"])
        assert survived_stats.pop("worker_recoveries") >= 1
        assert survived_stats == baseline.diagnostics["serving"]
        assert json.dumps(result_to_dict(survived), sort_keys=True) == json.dumps(
            result_to_dict(baseline), sort_keys=True
        )


class TestCheckpointResume:
    def test_interrupted_session_resumes_byte_identical(self, tmp_path):
        scenario = fault_scenario(trials=4)
        clean = api.run_scenario(scenario, workers=1)

        checkpoint = api.RunCheckpoint(tmp_path / "ckpt.json")
        calls = {"n": 0}

        def stop_after_two():
            calls["n"] += 1
            return calls["n"] > 2

        interrupted = api.run_scenario(
            scenario, workers=1, checkpoint=checkpoint, stop_flag=stop_after_two
        )
        assert interrupted.meta["stopped_early"]
        assert interrupted.meta["completed_trials"] == 2
        assert checkpoint.path.exists()

        resumed = api.run_scenario(scenario, workers=1, checkpoint=checkpoint)
        assert resumed.meta["resumed_trials"] == 2
        assert record_payload(resumed) == record_payload(clean)
        # A complete run clears its checkpoint.
        assert not checkpoint.path.exists()

    def test_checkpoint_for_other_scenario_is_ignored(self, tmp_path):
        checkpoint = api.RunCheckpoint(tmp_path / "ckpt.json")
        first = fault_scenario(trials=2)
        api.run_scenario(
            first, checkpoint=checkpoint, stop_flag=lambda: True
        )
        other = fault_scenario(trials=2, edge_mtbf=33.0)
        record = api.run_scenario(other, checkpoint=checkpoint)
        assert record.meta["resumed_trials"] == 0
        assert record.meta["completed_trials"] == 2


class TestStudyFaults:
    def test_faults_axis_group_resolves(self):
        study = (
            api.Study("faults-axis")
            .base(fault_scenario(trials=1))
            .over("faults.edge_mtbf", [15.0, 40.0])
        )
        result = study.run()
        stats = result.fault_stats()
        assert stats is not None and stats["slots"] > 0
        assert len(result.points) == 2

    def test_truncated_store_entry_recovers(self, tmp_path):
        store = str(tmp_path / "store")
        study = api.Study("store-robust").base(fault_scenario(trials=1)).over(
            "faults.edge_mtbf", [15.0]
        )
        first = study.run(store=store)
        entries = list((tmp_path / "store").glob("*.json"))
        assert len(entries) == 1
        pristine = entries[0].read_text()
        entries[0].write_text(pristine[: len(pristine) // 2])

        rebuilt = (
            api.Study("store-robust").base(fault_scenario(trials=1)).over(
                "faults.edge_mtbf", [15.0]
            )
        )
        with pytest.warns(RuntimeWarning, match="corrupt"):
            second = rebuilt.run(store=store)
        assert second.meta["points_cached"] == 0
        assert json.dumps(first.summaries(), sort_keys=True, default=str) == json.dumps(
            second.summaries(), sort_keys=True, default=str
        )
        # The recomputed point was rewritten cleanly.
        assert json.loads(entries[0].read_text())

    def test_stop_flag_winds_down_and_store_resumes(self, tmp_path):
        store = str(tmp_path / "store")

        def make_study():
            return (
                api.Study("stoppable")
                .base(fault_scenario(trials=1))
                .over("faults.edge_mtbf", [15.0, 40.0])
            )

        calls = {"n": 0}

        def stop_after_one():
            calls["n"] += 1
            return calls["n"] > 1

        with pytest.raises(KeyboardInterrupt):
            make_study().run(store=store, stop_flag=stop_after_one)
        resumed = make_study().run(store=store)
        assert resumed.meta["points_cached"] == 1
        assert resumed.meta["points"] == 2


class TestDegradationLadder:
    def run_stats(self, deadline):
        config = ExperimentConfig.tiny().with_overrides(
            solve_deadline=deadline, trials=1
        )
        return api.compare(config, policies=("oscar",), name="ladder").kernel_stats()

    def test_no_deadline_keeps_historical_payload(self):
        stats = self.run_stats(0)
        assert "greedy_slots" not in stats
        assert "deadline_greedy_fallbacks" not in stats

    def test_tight_deadline_degrades_to_greedy(self):
        stats = self.run_stats(1)
        assert stats["greedy_slots"] > 0
        assert stats["deadline_greedy_fallbacks"] == stats["greedy_slots"]
        assert stats["exhaustive_slots"] == 0

    def test_medium_deadline_falls_back_to_gibbs(self):
        # gibbs_iterations=10 at tiny scale: a budget of 12 admits the
        # sampler (11 evaluations) but not the larger exhaustive spaces.
        stats = self.run_stats(12)
        assert stats["deadline_gibbs_fallbacks"] > 0
        assert stats["deadline_greedy_fallbacks"] == 0

    def test_deadline_is_deterministic(self):
        assert self.run_stats(12) == self.run_stats(12)


class TestAvailabilityGate:
    def test_sheds_load_below_floor(self):
        from repro.serving.admission import AdmissionState, AvailabilityGate
        from repro.serving.arrivals import SessionSpec

        gate = AvailabilityGate(min_availability=0.9, threshold=100.0)
        spec = SessionSpec(
            session_id=0, joined_slot=0, source=0, destination=1,
            request_rate=1.0, lifetime=5, renew_probability=0.0, seed=1,
        )

        def state(availability, backlog=0.0):
            return AdmissionState(
                t=0, backlog=backlog, pending_requests=0, active_sessions=0,
                availability=availability,
            )

        assert gate.admit(spec, state(1.0))
        assert gate.admit(spec, state(0.9))
        assert not gate.admit(spec, state(0.89))
        assert not gate.admit(spec, state(1.0, backlog=101.0))

    def test_registered_and_validated(self):
        from repro.serving.admission import AvailabilityGate, make_admission_policy

        policy = make_admission_policy("availability", min_availability=0.5)
        assert isinstance(policy, AvailabilityGate)
        with pytest.raises(ValueError):
            AvailabilityGate(min_availability=1.5)
