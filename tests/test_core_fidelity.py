"""Tests for repro.core.fidelity (the fidelity-constrained extension)."""

import pytest

from repro.core.baselines import MyopicFixedPolicy
from repro.core.fidelity import FidelityAwarePolicy, RouteFidelityModel
from repro.core.oscar import OscarPolicy
from repro.network.graph import edge_key
from repro.network.routes import Route
from repro.physics.fidelity import fidelity_of_chain

from conftest import make_context, make_line_graph


class TestRouteFidelityModel:
    def test_route_fidelity_uses_chain_formula(self):
        model = RouteFidelityModel(link_fidelity=0.95)
        route = Route.from_nodes([0, 1, 2, 3])
        assert model.route_fidelity(route) == pytest.approx(fidelity_of_chain([0.95] * 3))

    def test_per_edge_overrides(self):
        model = RouteFidelityModel(
            link_fidelity=0.95, per_edge_fidelity={edge_key(0, 1): 0.8}
        )
        assert model.edge_fidelity(edge_key(0, 1)) == 0.8
        assert model.edge_fidelity(edge_key(1, 2)) == 0.95

    def test_longer_routes_have_lower_fidelity(self):
        model = RouteFidelityModel(link_fidelity=0.95)
        short = model.route_fidelity(Route.from_nodes([0, 1]))
        long = model.route_fidelity(Route.from_nodes([0, 1, 2, 3]))
        assert long < short

    def test_filter_candidates(self):
        model = RouteFidelityModel(link_fidelity=0.9)
        short = Route.from_nodes([0, 1])
        long = Route.from_nodes([0, 1, 2, 3, 4])
        target = model.route_fidelity(Route.from_nodes([0, 1, 2]))  # between the two
        filtered = model.filter_candidates({"pair": (short, long)}, target=target)
        assert short in filtered["pair"]
        assert long not in filtered["pair"]

    def test_invalid_fidelity_rejected(self):
        with pytest.raises(ValueError):
            RouteFidelityModel(link_fidelity=1.2)


class TestFidelityAwarePolicy:
    def test_name_mentions_target(self):
        wrapped = FidelityAwarePolicy(
            base=MyopicFixedPolicy(total_budget=40.0, horizon=10),
            fidelity_target=0.8,
        )
        assert "0.8" in wrapped.name

    def test_high_target_blocks_long_routes(self):
        graph = make_line_graph(num_nodes=5, qubits=20, channels=10)
        model = RouteFidelityModel(link_fidelity=0.9)
        # Target chosen so a 1-hop route passes but the 4-hop route 0→4 fails.
        target = model.route_fidelity(Route.from_nodes([0, 1, 2]))
        wrapped = FidelityAwarePolicy(
            base=MyopicFixedPolicy(total_budget=1000.0, horizon=10, gamma=10.0, gibbs_iterations=10),
            fidelity_model=model,
            fidelity_target=target,
        )
        wrapped.reset(graph, 10)
        context = make_context(graph, [(0, 4), (0, 1)])
        decision = wrapped.decide(context, seed=1)
        # The long request cannot meet the target, the short one can.
        long_request = context.requests[0]
        short_request = context.requests[1]
        assert long_request in decision.unserved
        assert decision.route_for(short_request) is not None

    def test_low_target_changes_nothing(self, line_graph):
        base = MyopicFixedPolicy(total_budget=1000.0, horizon=10, gamma=10.0, gibbs_iterations=10)
        wrapped = FidelityAwarePolicy(base=base, fidelity_target=0.3)
        wrapped.reset(line_graph, 10)
        context = make_context(line_graph, [(0, 3)])
        decision = wrapped.decide(context, seed=1)
        assert decision.num_served == 1

    def test_works_with_oscar(self, line_graph):
        wrapped = FidelityAwarePolicy(
            base=OscarPolicy(
                total_budget=100.0, horizon=10, trade_off_v=100.0,
                gamma=10.0, gibbs_iterations=10,
            ),
            fidelity_target=0.5,
        )
        wrapped.reset(line_graph, 10)
        decision = wrapped.decide(make_context(line_graph, [(0, 2)]), seed=1)
        assert decision.num_served == 1
        assert "queue_history" in wrapped.diagnostics()

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            FidelityAwarePolicy(
                base=MyopicFixedPolicy(total_budget=10.0, horizon=5), fidelity_target=1.5
            )


class TestUnifiedFidelityModel:
    """core.fidelity delegates to physics.fidelity.fidelity_after_swap."""

    def test_route_fidelity_is_iterated_fidelity_after_swap(self):
        from repro.physics.fidelity import fidelity_after_swap

        model = RouteFidelityModel(link_fidelity=0.94)
        route = Route.from_nodes([0, 1, 2, 3, 4])
        folded = 0.94
        for _ in range(3):
            folded = fidelity_after_swap(folded, 0.94)
        assert model.route_fidelity(route) == folded

    def test_regression_pins_current_analytic_values(self):
        # The closed Werner-product form F = (3 Π w_i + 1) / 4 the model
        # historically used; the iterated-swap delegation must keep every
        # value (tight tolerance: the fold only reassociates float ops).
        model = RouteFidelityModel(link_fidelity=0.98)
        for hops, expected in [
            (1, 0.98),
            (2, 0.9605333333333332),
            (3, 0.9415857777777776),
            (4, 0.9231434903703702),
        ]:
            route = Route.from_nodes(list(range(hops + 1)))
            product = ((4 * 0.98 - 1) / 3) ** hops
            assert expected == pytest.approx((3 * product + 1) / 4, rel=1e-12)
            assert model.route_fidelity(route) == pytest.approx(expected, rel=1e-12)

    def test_physical_engine_and_route_model_share_chain_composition(self):
        # The physical layer's delivered chain fidelity and the analytic
        # route model must compose identically (same fold, same floats).
        from repro.physics.fidelity import fidelity_of_chain
        from repro.simulation.physical import PhysicalModel

        model = PhysicalModel(link_fidelity=0.97, dwell_fraction=0.0)
        engine = model.build_engine()
        plans = [engine.plan_for(2) for _ in range(3)]
        assert engine.chain_fidelity(plans) == fidelity_of_chain([0.97] * 3)
        analytic = RouteFidelityModel(link_fidelity=0.97)
        assert engine.chain_fidelity(plans) == analytic.route_fidelity(
            Route.from_nodes([0, 1, 2, 3])
        )
