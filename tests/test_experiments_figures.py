"""End-to-end tests of the figure-reproduction modules (tiny configurations).

These tests exercise each figure's pipeline from topology generation to the
formatted table; the *qualitative* shape checks against the paper are done
at slightly larger scale in the integration tests and benchmarks.
"""

import pytest

from repro.experiments import (
    ablations,
    fig3_time_evolving,
    fig4_distribution,
    fig5_budget,
    fig6_network_size,
    fig7_control_v,
    fig8_initial_queue,
)
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig.tiny().with_overrides(horizon=6, trials=1)


@pytest.fixture(scope="module")
def fig3_result(tiny_config):
    return fig3_time_evolving.run(tiny_config, seed=5)


class TestFig3:
    def test_series_cover_all_policies_and_slots(self, fig3_result, tiny_config):
        for series_map in (
            fig3_result.running_utility,
            fig3_result.running_success_rate,
            fig3_result.cumulative_cost,
        ):
            assert set(series_map.keys()) == {"OSCAR", "MA", "MF"}
            assert all(len(series) == tiny_config.horizon for series in series_map.values())

    def test_cumulative_cost_is_monotone(self, fig3_result):
        for series in fig3_result.cumulative_cost.values():
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_success_rates_are_probabilities(self, fig3_result):
        for series in fig3_result.running_success_rate.values():
            assert all(0.0 <= value <= 1.0 for value in series)

    def test_final_values_and_tables(self, fig3_result):
        finals = fig3_result.final_values()
        assert set(finals.keys()) == {"OSCAR", "MA", "MF"}
        text = fig3_result.format_tables()
        assert "Fig. 3(a)" in text and "Fig. 3(b)" in text and "Fig. 3(c)" in text


class TestFig4:
    def test_histogram_structure(self, tiny_config, fig3_result):
        result = fig4_distribution.run(
            tiny_config, bins=5, comparison=fig3_result.comparison
        )
        assert len(result.bin_edges) == 6
        for fractions in result.histograms.values():
            assert len(fractions) == 5
            assert sum(fractions) == pytest.approx(1.0)
        assert set(result.fairness.keys()) == {"OSCAR", "MA", "MF"}
        assert "Fig. 4" in result.format_tables()


class TestFig5:
    def test_budget_sweep(self, tiny_config):
        budgets = [150.0, 300.0]
        result = fig5_budget.run(tiny_config, budgets=budgets, trials=1, seed=2)
        assert result.budgets == budgets
        for series in result.success_rate.values():
            assert len(series) == 2
        assert len(result.oscar_advantage("MF")) == 2
        assert "Fig. 5(a)" in result.format_tables()

    def test_default_sweep_scales_with_config(self, tiny_config):
        budgets = fig5_budget.sweep_budgets_for(tiny_config)
        assert min(budgets) < tiny_config.total_budget < max(budgets) + 1e-9


class TestFig6:
    def test_size_sweep(self, tiny_config):
        result = fig6_network_size.run(tiny_config, sizes=(6, 8), trials=1, seed=3)
        assert result.sizes == [6, 8]
        for series in result.success_rate.values():
            assert len(series) == 2
        assert "Fig. 6(a)" in result.format_tables()

    def test_default_sizes_scale_with_config(self, tiny_config):
        sizes = fig6_network_size.sweep_sizes_for(tiny_config)
        assert all(size >= 6 for size in sizes)
        assert len(sizes) >= 2


class TestFig7:
    def test_v_sweep(self, tiny_config):
        result = fig7_control_v.run(tiny_config, v_values=(100.0, 5000.0), trials=1, seed=4)
        assert result.v_values == [100.0, 5000.0]
        assert len(result.average_utility) == 2
        assert len(result.budget_violation) == 2
        assert len(result.theorem1_bounds) == 2
        assert "Fig. 7" in result.format_tables()

    def test_larger_v_never_spends_less(self, tiny_config):
        result = fig7_control_v.run(tiny_config, v_values=(50.0, 10000.0), trials=1, seed=4)
        assert result.total_cost[1] >= result.total_cost[0] - 1e-9


class TestFig8:
    def test_q0_sweep(self, tiny_config):
        result = fig8_initial_queue.run(tiny_config, q0_values=(0.0, 100.0), trials=1, seed=5)
        assert result.q0_values == [0.0, 100.0]
        assert len(result.total_cost) == 2
        assert len(result.early_cost) == 2
        assert "Fig. 8" in result.format_tables()

    def test_larger_q0_spends_less_early(self, tiny_config):
        result = fig8_initial_queue.run(tiny_config, q0_values=(0.0, 500.0), trials=1, seed=6)
        assert result.early_cost[1] <= result.early_cost[0] + 1e-9


class TestAblations:
    def test_link_model_ablation_validates_equation_one(self):
        result = ablations.run_link_model_ablation(
            attempt_success=2e-3, attempts_per_slot=200, channel_counts=(1, 2), trials=5000
        )
        assert result.max_absolute_error() < 0.03
        assert "Monte-Carlo" in result.format_table()

    def test_solver_ablation(self, tiny_config):
        result = ablations.run_solver_ablation(tiny_config, num_slots=3, seed=1)
        assert result.instances > 0
        assert result.mean_relative_gap < 0.05
        assert "SLSQP" in result.format_table()

    def test_route_selection_ablation(self, tiny_config):
        result = ablations.run_route_selection_ablation(tiny_config, num_slots=3, seed=2)
        assert result.slots_compared > 0
        # Exhaustive is exact, so the gap is non-negative and small.
        assert result.mean_objective_gap >= -1e-6
        assert "Gibbs" in result.format_table()
