"""Tracked benchmark of the fault layer: schedule builds and run overhead.

Three measurements:

* **schedule** — :meth:`FaultSchedule.build` precompiles the per-slot
  outage states for a small-scale graph over a long horizon, reported as
  element-slots/s of wall clock and normalised against a bare numpy
  exponential-draw loop measured in the same process.  The headline
  number is the dimensionless ``relative_schedule_throughput``
  (element-slots/s over raw draws/s), which is stable across machines.
* **overhead** — the same scenario run fault-free and fault-injected,
  reported as ``relative_run_efficiency`` (clean seconds over faulted
  seconds, ≤ ~1); a drop means the per-slot fault path got expensive.
* **identity** — the standing determinism contracts: a run with
  ``fault_enabled=False`` is byte-identical to one that never mentions
  faults, and a fault-injected run is byte-identical on one and two
  worker processes.

Writes the numbers to ``BENCH_faults.json`` (``--output``); with
``--check BASELINE.json`` it exits non-zero when an identity contract
breaks or a relative metric falls below 80 % of the committed baseline's
(ratios, not absolute times, so the check is stable across machines).

Usage::

    PYTHONPATH=src python benchmarks/faults_bench.py --output BENCH_faults.json
    PYTHONPATH=src python benchmarks/faults_bench.py --quick --check benchmarks/BENCH_faults_quick.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import api
from repro.experiments.config import ExperimentConfig
from repro.faults.model import FaultModel, FaultSchedule
from repro.utils.rng import derive_seed
from repro.version import __version__

#: Regression threshold: fail when a relative metric drops below this
#: fraction of the committed baseline's value.
REGRESSION_FRACTION = 0.8


def bench_config(quick: bool) -> ExperimentConfig:
    base = ExperimentConfig.tiny() if quick else ExperimentConfig.small()
    return base.with_overrides(trials=2 if quick else 3)


def fault_overrides() -> dict:
    return dict(
        fault_enabled=True,
        fault_edge_mtbf=25.0,
        fault_node_mtbf=80.0,
        fault_mttr=4.0,
    )


def run_scenario(config: ExperimentConfig, workers: int = 1):
    """One OSCAR run through the facade; returns (seconds, record)."""
    scenario = api.Scenario.from_config(config).with_policies("oscar")
    started = time.perf_counter()
    record = api.run_scenario(scenario, workers=workers)
    return time.perf_counter() - started, record


def payload(record) -> str:
    body = record.to_dict()
    body.pop("meta", None)  # meta carries wall-clock timings
    return json.dumps(body, sort_keys=True)


def run_draw_baseline(draws: int) -> float:
    """A bare numpy exponential-draw loop (the normaliser)."""
    rng = np.random.default_rng(7)
    started = time.perf_counter()
    for _ in range(draws // 1000):
        rng.exponential(25.0, size=1000)
    return time.perf_counter() - started


def bench_schedule(quick: bool, repeats: int) -> dict:
    """Throughput of the per-slot outage-schedule precompilation."""
    config = ExperimentConfig.small()
    graph = config.build_graph(seed=derive_seed(1, "graph", 0))
    model = FaultModel(edge_mtbf=25.0, node_mtbf=80.0, mttr=4.0)
    horizon = 2000 if quick else 10000

    best_s = float("inf")
    schedule = None
    for _ in range(repeats):
        started = time.perf_counter()
        schedule = FaultSchedule.build(model, graph, seed=11, horizon=horizon)
        best_s = min(best_s, time.perf_counter() - started)

    element_slots = schedule.num_elements * horizon
    draws = 500_000 if quick else 1_000_000
    draw_s = min(run_draw_baseline(draws) for _ in range(repeats))
    element_slots_per_s = element_slots / best_s
    draws_per_s = draws / draw_s
    return {
        "horizon": horizon,
        "num_elements": schedule.num_elements,
        "build_s": round(best_s, 4),
        "element_slots_per_s": round(element_slots_per_s, 1),
        "draws_per_s": round(draws_per_s, 1),
        "relative_schedule_throughput": round(
            element_slots_per_s / draws_per_s, 4
        ),
    }


def bench_overhead(quick: bool, repeats: int) -> dict:
    """Wall-clock cost of running the same scenario with faults on."""
    clean_config = bench_config(quick)
    faulted_config = clean_config.with_overrides(**fault_overrides())
    clean_s = faulted_s = float("inf")
    faulted = None
    for _ in range(repeats):
        seconds, _ = run_scenario(clean_config)
        clean_s = min(clean_s, seconds)
        seconds, faulted = run_scenario(faulted_config)
        faulted_s = min(faulted_s, seconds)
    stats = faulted.fault_stats()
    return {
        "clean_s": round(clean_s, 4),
        "faulted_s": round(faulted_s, 4),
        "relative_run_efficiency": round(clean_s / faulted_s, 4),
        "availability": round(api.fault_availability(stats) or 1.0, 4),
        "edge_failures": int(stats["edge_failures"]),
        "node_failures": int(stats["node_failures"]),
    }


def bench_identity(quick: bool) -> dict:
    """The fault layer's standing byte-identity contracts."""
    config = bench_config(quick)
    _, plain = run_scenario(config)
    _, disabled = run_scenario(config.with_overrides(fault_enabled=False))
    faulted_config = config.with_overrides(**fault_overrides())
    _, serial = run_scenario(faulted_config, workers=1)
    _, parallel = run_scenario(faulted_config, workers=2)
    return {
        "fault_free_identical": payload(plain) == payload(disabled),
        "serial_parallel_identical": payload(serial) == payload(parallel),
    }


def run_benchmarks(quick: bool) -> dict:
    repeats = 3
    return {
        "meta": {
            "version": __version__,
            "quick": quick,
            "python": sys.version.split()[0],
        },
        "schedule": bench_schedule(quick, repeats),
        "overhead": bench_overhead(quick, repeats),
        "identity": bench_identity(quick),
    }


def check_against_baseline(results: dict, baseline: dict) -> list:
    """Regressions vs the committed baseline (see module docstring)."""
    failures = []
    baseline_quick = (baseline.get("meta") or {}).get("quick")
    if baseline_quick is not None and baseline_quick != results["meta"]["quick"]:
        return [
            "baseline was recorded with quick=%s but this run used quick=%s; "
            "compare like against like (benchmarks/BENCH_faults_quick.json "
            "is the quick-mode baseline)" % (baseline_quick, results["meta"]["quick"])
        ]
    if not results["identity"]["fault_free_identical"]:
        failures.append(
            "identity: a fault_enabled=False run diverged from the plain run "
            "(fault-free byte-identity break)"
        )
    if not results["identity"]["serial_parallel_identical"]:
        failures.append(
            "identity: serial and 2-worker fault-injected runs diverged "
            "(determinism break)"
        )
    for section, metric in (
        ("schedule", "relative_schedule_throughput"),
        ("overhead", "relative_run_efficiency"),
    ):
        current = results[section].get(metric)
        reference = (baseline.get(section) or {}).get(metric)
        if current is not None and reference is not None:
            if current < REGRESSION_FRACTION * reference:
                failures.append(
                    f"{section}: {metric} {current:.4f} fell below "
                    f"{REGRESSION_FRACTION:.0%} of baseline {reference:.4f}"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny scale and shorter horizon for CI smoke runs")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the benchmark JSON to this file")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail on an identity break or >20%% relative "
                             "regression vs this baseline JSON")
    arguments = parser.parse_args(argv)

    results = run_benchmarks(quick=arguments.quick)
    print(json.dumps(results, indent=2))

    if arguments.output:
        Path(arguments.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"[written to {arguments.output}]", file=sys.stderr)

    if arguments.check:
        baseline = json.loads(Path(arguments.check).read_text())
        failures = check_against_baseline(results, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("[no regression against baseline]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
