"""The metrics registry: counters, gauges and fixed-bucket histograms.

Each :class:`~repro.telemetry.tracer.Tracer` owns one
:class:`MetricsRegistry`.  Layers register instruments lazily by name
(``registry.counter("serving.sessions_admitted").inc()``) and the registry
snapshots into a **flat dotted-key mapping** (``counter.<name>``,
``gauge.<name>``, ``hist.<name>.le_<bound>`` …) whose values are all
summable numbers.  That shape is deliberate: it makes cross-worker and
cross-trial aggregation a plain key-wise sum — the same
sum-sorted-by-key discipline the serving merge uses — so merged metrics
are bit-identical for any worker layout (see
:func:`repro.telemetry.tracer.merge_telemetry_stats`).

Instruments draw no randomness and never raise out of the hot path; a
histogram's bucket bounds are fixed at registration, Prometheus-style
(cumulative ``le`` buckets, so both per-bucket and cumulative sums merge
exactly).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
]

#: Default histogram bounds (seconds) — tuned for per-slot stage latencies,
#: which range from ~10 µs (bookkeeping) to ~1 s (a heavy solve).
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
)


class Counter:
    """A monotonically increasing count (merged across workers by sum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins within a process).

    Gauges merge by sum like every other key — callers that need a
    cross-worker maximum or last-value should model the quantity as a
    counter or histogram instead; the built-in sites only gauge values
    that are meaningful when summed (e.g. per-trial final backlogs).
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram with cumulative (Prometheus ``le``) buckets."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or list(ordered) != sorted(ordered):
            raise ValueError(f"histogram bounds must be sorted and non-empty, got {bounds!r}")
        self.bounds = ordered
        # One slot per finite bound plus the +inf overflow bucket.
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """Lazily named instruments plus a flat, summable snapshot."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def snapshot(self) -> Dict[str, float]:
        """The flat dotted-key mapping (iterated in sorted-name order)."""
        out: Dict[str, float] = {}
        for name in sorted(self._counters):
            out[f"counter.{name}"] = self._counters[name].value
        for name in sorted(self._gauges):
            out[f"gauge.{name}"] = self._gauges[name].value
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            cumulative = 0
            for bound, bucket in zip(histogram.bounds, histogram.counts):
                cumulative += bucket
                out[f"hist.{name}.le_{bound:g}"] = cumulative
            out[f"hist.{name}.le_inf"] = cumulative + histogram.counts[-1]
            out[f"hist.{name}.sum"] = histogram.total
            out[f"hist.{name}.count"] = histogram.count
        return out
