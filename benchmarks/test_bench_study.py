"""Benchmark: the study work queue — parallel saturation and byte-identity.

The acceptance bar of the study layer: a 4-point × 3-policy × 4-trial grid
run with ``workers=4`` returns records byte-identical to ``workers=1`` and
finishes faster (the single flattened queue keeps workers busy across point
boundaries).  Identity is asserted unconditionally; the wall-clock win is
asserted only on multi-core hosts.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import api
from conftest import sweep_config


def _study() -> api.Study:
    base = (
        api.Scenario.from_config(sweep_config(), name="bench-study")
        .with_trials(4)
        .with_policies("oscar", "ma", "mf")
    )
    budgets = [0.6, 0.8, 1.0, 1.2]
    return (
        api.Study("bench-study")
        .base(base)
        .over(
            "budget.total_budget",
            [round(base.config.total_budget * factor, 2) for factor in budgets],
            label="C",
        )
    )


def _payload(result: api.StudyResult) -> str:
    return json.dumps(
        [record.to_dict()["trials"] for record in result.records], sort_keys=True
    )


@pytest.mark.benchmark(group="study")
def test_study_queue_parallel_identity_and_speed(benchmark):
    study = _study()
    assert len(study) == 4

    started = time.perf_counter()
    serial = study.run(workers=1)
    serial_seconds = time.perf_counter() - started
    assert serial.meta["tasks_executed"] == 4 * 4  # whole trials when serial

    started = time.perf_counter()
    parallel = benchmark.pedantic(study.run, kwargs={"workers": 4}, rounds=1, iterations=1)
    parallel_seconds = time.perf_counter() - started
    assert parallel.meta["tasks_executed"] == 4 * 3 * 4  # point × policy × trial

    # Byte-identical records regardless of worker count.
    assert _payload(serial) == _payload(parallel)

    print()
    print(
        f"study 4x3x4: serial {serial_seconds:.1f} s, "
        f"workers=4 {parallel_seconds:.1f} s "
        f"(speedup x{serial_seconds / max(parallel_seconds, 1e-9):.2f} "
        f"on {os.cpu_count()} cpu(s))"
    )
    if (os.cpu_count() or 1) >= 4:
        assert parallel_seconds < serial_seconds


@pytest.mark.benchmark(group="study")
def test_study_store_resume_is_instant(benchmark, tmp_path):
    study = _study()
    study.run(workers=1, store=tmp_path)

    resumed = benchmark.pedantic(
        study.run, kwargs={"workers": 1, "store": tmp_path}, rounds=1, iterations=1
    )
    assert resumed.meta["points_cached"] == 4
    assert resumed.meta["tasks_executed"] == 0
