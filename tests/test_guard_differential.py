"""Lockstep differential harness: implementation pairs must agree slot-for-slot."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.guard.differential import (
    PAIRS,
    compare_slot_records,
    diff_backends,
    diff_physical_engines,
    diff_solvers,
    run_all,
)


def _tiny():
    return ExperimentConfig.tiny().with_overrides(horizon=6)


# --------------------------------------------------------------------- #
# The comparator itself
# --------------------------------------------------------------------- #
def test_identical_streams_report_ok():
    records = [{"t": 0, "cost": 3}, {"t": 1, "cost": 2}]
    report = compare_slot_records("demo", "a", "b", records, list(records))
    assert report.identical
    assert report.slots_compared == 2
    assert "OK" in report.describe()


def test_first_divergence_is_reported_with_both_snapshots():
    left = [{"t": 0, "cost": 3}, {"t": 1, "cost": 2}]
    right = [{"t": 0, "cost": 3}, {"t": 1, "cost": 5}]
    report = compare_slot_records("demo", "a", "b", left, right)
    assert not report.identical
    div = report.divergence
    assert div.slot == 1 and div.field_name == "cost"
    assert div.left == 2 and div.right == 5
    assert div.left_record == left[1] and div.right_record == right[1]
    assert "DIVERGED at slot 1" in report.describe()


def test_nan_equals_nan_but_floats_are_exact():
    nan = float("nan")
    report = compare_slot_records(
        "demo", "a", "b", [{"x": nan, "y": 1.0}], [{"x": nan, "y": 1.0}]
    )
    assert report.identical
    report = compare_slot_records(
        "demo", "a", "b", [{"y": 1.0}], [{"y": 1.0 + 1e-12}]
    )
    assert not report.identical


def test_record_count_mismatch_diverges():
    report = compare_slot_records("demo", "a", "b", [{"t": 0}], [{"t": 0}, {"t": 1}])
    assert not report.identical
    assert report.divergence.field_name == "<record count>"


def test_missing_field_diverges():
    report = compare_slot_records("demo", "a", "b", [{"t": 0, "q": 1.0}], [{"t": 0}])
    assert not report.identical
    assert report.divergence.field_name == "q"


# --------------------------------------------------------------------- #
# The stock pairs (slow-ish: three full tiny runs each)
# --------------------------------------------------------------------- #
def test_backend_pair_identical_at_zero_latency():
    report = diff_backends(_tiny())
    assert report.identical, report.describe()
    assert report.slots_compared == 6


def test_backend_pair_pins_physical_off():
    # The zero-latency contract covers the logical layer; the two backends
    # model memory dwell differently, so the pair must stay OK even when the
    # caller's config has the physical chain enabled.
    report = diff_backends(_tiny().with_overrides(physical_enabled=True))
    assert report.identical, report.describe()


def test_physical_engine_pair_identical():
    report = diff_physical_engines(_tiny())
    assert report.identical, report.describe()


def test_solver_pair_identical():
    report = diff_solvers(_tiny())
    assert report.identical, report.describe()


def test_run_all_covers_every_registered_pair():
    reports = run_all(config=_tiny())
    assert len(reports) == len(PAIRS) == 3
    assert {report.pair for report in reports} == {
        "backend",
        "physical-engine",
        "solver",
    }
    assert all(report.identical for report in reports)


def test_run_all_validates_config():
    with pytest.raises(ValueError):
        run_all(config=ExperimentConfig.tiny().with_overrides(horizon=-1))
