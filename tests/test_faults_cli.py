"""Tests for the fault-injection CLI surface and the fig11 resilience study."""

import pytest

from repro.cli import (
    _config_from_args,
    _fault_stats_fragment,
    _render_health_line,
    build_parser,
    main,
)
from repro.experiments import fig11_resilience
from repro.experiments.config import ExperimentConfig


def parse(*argv):
    return build_parser().parse_args(list(argv))


class TestFaultFlags:
    def test_disabled_by_default(self):
        config = _config_from_args(parse("info", "--scale", "tiny"))
        assert not config.fault_enabled

    def test_faults_flag_enables(self):
        config = _config_from_args(parse("info", "--scale", "tiny", "--faults"))
        assert config.fault_enabled
        assert config.fault_aware

    def test_parameters_imply_faults(self):
        config = _config_from_args(
            parse("info", "--scale", "tiny", "--edge-mtbf", "30", "--mttr", "4")
        )
        assert config.fault_enabled
        assert config.fault_edge_mtbf == 30.0
        assert config.fault_mttr == 4.0

    def test_node_mtbf_implies_faults(self):
        config = _config_from_args(parse("info", "--scale", "tiny", "--node-mtbf", "50"))
        assert config.fault_enabled
        assert config.fault_node_mtbf == 50.0

    def test_fault_blind_disables_awareness(self):
        config = _config_from_args(parse("info", "--scale", "tiny", "--fault-blind"))
        assert config.fault_enabled
        assert not config.fault_aware

    def test_solve_deadline_is_independent_of_faults(self):
        config = _config_from_args(
            parse("info", "--scale", "tiny", "--solve-deadline", "12")
        )
        assert config.solve_deadline == 12
        assert not config.fault_enabled

    def test_checkpoint_flag_accepted(self):
        assert parse("compare", "--checkpoint", "/tmp/c.json").checkpoint == "/tmp/c.json"
        assert parse("serve", "--checkpoint", "/tmp/c.json").checkpoint == "/tmp/c.json"

    def test_fig11_registered(self):
        assert parse("figure", "fig11").name == "fig11"


class TestHealthLine:
    def test_fragment_empty_without_stats(self):
        assert _fault_stats_fragment(None) is None
        assert _fault_stats_fragment({}) is None

    def test_fragment_content(self):
        fragment = _fault_stats_fragment(
            {
                "element_slots": 200,
                "down_element_slots": 10,
                "node_failures": 1,
                "edge_failures": 4,
                "requests_unservable": 3,
                "requests_interrupted": 2,
            }
        )
        assert "0.950 availability" in fragment
        assert "1 node/4 edge outage(s)" in fragment
        assert "3 unservable/2 interrupted" in fragment

    def test_health_line_includes_faults(self):
        line = _render_health_line({"faults": {"element_slots": 10}})
        assert line.startswith("[health] faults")


class TestCompareWithFaults:
    def test_end_to_end_with_health_line(self, capsys):
        code = main(
            [
                "compare", "--scale", "tiny", "--trials", "1",
                "--edge-mtbf", "25", "--mttr", "4", "--progress",
                "--policies", "oscar",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "OSCAR" in captured.out
        assert "faults" in captured.err


class TestFig11:
    def test_mtbf_for_rate(self):
        assert fig11_resilience.mtbf_for_rate(0.0) == 0.0
        assert fig11_resilience.mtbf_for_rate(0.02) == pytest.approx(50.0)

    def test_fig11_config_enables_faults_and_physical(self):
        config = fig11_resilience.fig11_config(ExperimentConfig.tiny())
        assert config.fault_enabled
        assert config.physical_enabled
        assert config.physical_swap_success == pytest.approx(0.98)

    def test_fig11_config_respects_pinned_fields(self):
        base = ExperimentConfig.tiny().with_overrides(physical_swap_success=0.5)
        config = fig11_resilience.fig11_config(
            base, explicit=["physical_swap_success"]
        )
        assert config.physical_swap_success == pytest.approx(0.5)
        assert config.physical_cutoff_fidelity == pytest.approx(0.25)

    def test_build_study_axes(self):
        study = fig11_resilience.build_study(
            ExperimentConfig.tiny(), rates=[0.0, 0.02]
        )
        labels = [axis.label for axis in study._axes]
        assert labels == ["aware", "edge_mtbf"]

    def test_tiny_run_zero_rate_modes_coincide(self):
        result = fig11_resilience.run(
            ExperimentConfig.tiny(), outage_rates=[0.0, 0.05], trials=1
        )
        assert result.outage_rates == [0.0, 0.05]
        throughput = result.throughput
        assert set(throughput) == {"OSCAR (aware)", "OSCAR (blind)"}
        # With no outages the degradation mode cannot matter.
        assert throughput["OSCAR (aware)"][0] == throughput["OSCAR (blind)"][0]
        fidelity = result.delivered_fidelity
        assert fidelity["OSCAR (aware)"][0] == fidelity["OSCAR (blind)"][0]
        payload = result.to_dict()
        assert payload["figure"] == "fig11"
        assert payload["fault_stats"]["slots"] > 0

    def test_format_tables_mentions_both_panels(self):
        result = fig11_resilience.run(
            ExperimentConfig.tiny(), outage_rates=[0.0], trials=1
        )
        report = result.format_tables()
        assert "Fig. 11(a)" in report
        assert "Fig. 11(b)" in report
