"""Figure 4 — distribution of per-SD-pair EC success rates.

The paper uses Fig. 4 to argue fairness: under OSCAR the success rates of
individual SD pairs concentrate at high values, whereas the myopic
baselines (MA in particular, because of its conservative early slots)
produce a wider spread with a heavier low-success tail.  We reproduce the
histogram and additionally report Jain's fairness index per policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import api
from repro.analysis.metrics import jain_fairness_index, success_rate_histogram
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import ComparisonResult


@dataclass
class Figure4Result:
    """Success-rate histogram and fairness index per policy."""

    config: ExperimentConfig
    bin_edges: List[float]
    histograms: Dict[str, List[float]]
    fairness: Dict[str, float]
    comparison: Optional[ComparisonResult] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable payload; the run uses the RunRecord schema."""
        import dataclasses

        record = (
            api.RunRecord.from_comparison(self.comparison, name="fig4")
            if self.comparison is not None
            else None
        )
        return {
            "figure": "fig4",
            "config": dataclasses.asdict(self.config),
            "bin_edges": list(self.bin_edges),
            "histograms": {k: list(v) for k, v in self.histograms.items()},
            "fairness": dict(self.fairness),
            "record": record.to_dict() if record is not None else None,
        }

    def format_tables(self) -> str:
        """The histogram and fairness table as plain text."""
        headers = ["bin"] + list(self.histograms.keys())
        rows = []
        for index in range(len(self.bin_edges) - 1):
            label = f"[{self.bin_edges[index]:.1f},{self.bin_edges[index + 1]:.1f})"
            row: List[object] = [label]
            for name in self.histograms:
                row.append(self.histograms[name][index])
            rows.append(row)
        histogram_table = format_table(
            headers, rows, title="Fig. 4 Success-rate distribution (fraction of SD pairs per bin)"
        )
        fairness_table = format_table(
            ["policy", "jain_fairness"],
            [[name, value] for name, value in self.fairness.items()],
            title="Jain's fairness index of per-request success rates",
        )
        return histogram_table + "\n\n" + fairness_table


def run(
    config: Optional[ExperimentConfig] = None,
    bins: int = 10,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    comparison: Optional[ComparisonResult] = None,
    workers: int = 1,
) -> Figure4Result:
    """Run the Fig. 4 experiment (or reuse an existing comparison run)."""
    config = config or ExperimentConfig.paper()
    if comparison is None:
        comparison = api.compare(
            config, trials=trials, seed=seed, workers=workers, name="fig4"
        ).to_comparison()

    bin_edges: List[float] = []
    histograms: Dict[str, List[float]] = {}
    fairness: Dict[str, float] = {}
    for name in comparison.policy_names:
        pool = comparison.success_probability_pool(name)
        edges, fractions = success_rate_histogram(pool, bins=bins)
        bin_edges = edges
        histograms[name] = fractions
        fairness[name] = jain_fairness_index(pool) if pool else 1.0
    return Figure4Result(
        config=config,
        bin_edges=bin_edges,
        histograms=histograms,
        fairness=fairness,
        comparison=comparison,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run(ExperimentConfig.small())
    print(result.format_tables())


if __name__ == "__main__":  # pragma: no cover
    main()
