"""Runtime self-verification: invariant guard, flight recorder, replay.

Three pieces, one contract:

* :class:`InvariantGuard` (:mod:`repro.guard.invariants`) — per-layer
  semantic checks (kernel/core/physical/serving/faults) that run alongside
  a simulation at ``guard_level`` ``"cheap"`` or ``"strict"`` and raise
  :class:`InvariantViolation` on a breach.  Purely observational: enabling
  the guard never changes a result.
* :class:`FlightRecorder` (:mod:`repro.guard.recorder`) — a bounded ring of
  recent slot records that, on a breach or crash, dumps a content-addressed
  repro bundle; :mod:`repro.guard.replay` re-executes a bundle's trial and
  re-asserts the identical failure (``repro replay <bundle>``).
* :mod:`repro.guard.differential` — lockstep pairs (slotted vs event
  backend, reference vs vectorized physical engine, kernel vs legacy
  solver) reporting the first diverging slot (``repro diff-check``).
"""

from repro.guard.differential import (
    PAIRS,
    DiffReport,
    Divergence,
    compare_slot_records,
    diff_backends,
    diff_physical_engines,
    diff_solvers,
    run_all,
)
from repro.guard.invariants import (
    FORCE_BREACH_ENV_VAR,
    GUARD_ENV_VAR,
    GUARD_LEVELS,
    InvariantGuard,
    InvariantViolation,
    effective_guard_level,
    forced_breach_slot,
    merge_guard_stats,
)
from repro.guard.recorder import (
    BUNDLE_DIR_ENV_VAR,
    FlightRecorder,
    build_bundle,
    bundle_dir,
    dump_bundle,
    load_bundle,
)
from repro.guard.replay import ReplayResult, replay_bundle

__all__ = [
    "BUNDLE_DIR_ENV_VAR",
    "DiffReport",
    "Divergence",
    "FORCE_BREACH_ENV_VAR",
    "FlightRecorder",
    "GUARD_ENV_VAR",
    "GUARD_LEVELS",
    "InvariantGuard",
    "InvariantViolation",
    "PAIRS",
    "ReplayResult",
    "build_bundle",
    "bundle_dir",
    "compare_slot_records",
    "diff_backends",
    "diff_physical_engines",
    "diff_solvers",
    "dump_bundle",
    "effective_guard_level",
    "forced_breach_slot",
    "load_bundle",
    "merge_guard_stats",
    "replay_bundle",
    "run_all",
]
