"""The Lyapunov virtual cost-deficit queue.

OSCAR enforces the long-term budget constraint through a virtual queue
``q_t`` that accumulates budget over-spending (paper, Eq. 7):

    q_{t+1} = max(0, q_t + c_t − C/T)

where ``c_t`` is the realised cost of slot ``t`` and ``C/T`` the average
per-slot budget.  The queue length is used as the per-unit cost price in the
per-slot problem P2, so a long queue makes the algorithm thrifty and a short
queue lets it spend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.utils.validation import check_non_negative, check_positive


@dataclass
class VirtualQueue:
    """Virtual cost-deficit queue with full history tracking."""

    initial_length: float = 0.0
    per_slot_budget: float = 0.0
    _length: float = field(init=False)
    _history: List[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_non_negative(self.initial_length, "initial_length")
        check_non_negative(self.per_slot_budget, "per_slot_budget")
        self._length = float(self.initial_length)
        self._history = [self._length]

    @classmethod
    def for_budget(cls, total_budget: float, horizon: int, initial_length: float = 0.0) -> "VirtualQueue":
        """Build a queue whose per-slot budget is ``C / T``."""
        check_non_negative(total_budget, "total_budget")
        check_positive(horizon, "horizon")
        return cls(initial_length=initial_length, per_slot_budget=total_budget / horizon)

    @property
    def length(self) -> float:
        """The current queue length ``q_t``."""
        return self._length

    @property
    def history(self) -> List[float]:
        """Queue lengths ``q_0, q_1, …`` observed so far (copy)."""
        return list(self._history)

    def reset(self) -> None:
        """Return to the initial length and clear the history."""
        self._length = float(self.initial_length)
        self._history = [self._length]

    def update(self, cost: float) -> float:
        """Apply the recursion ``q ← max(0, q + cost − C/T)`` and return the new length."""
        check_non_negative(cost, "cost")
        self._length = max(0.0, self._length + float(cost) - self.per_slot_budget)
        self._history.append(self._length)
        return self._length

    def drift(self, cost: float) -> float:
        """The one-slot Lyapunov drift bound term ``q_t · (c_t − C/T)``.

        This is the dominant term of Eq. (17) in the paper's Theorem 1 proof;
        exposed mainly for the theoretical-bound checks in the test suite.
        """
        check_non_negative(cost, "cost")
        return self._length * (float(cost) - self.per_slot_budget)
