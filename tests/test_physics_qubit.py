"""Tests for repro.physics.qubit."""

import math

import numpy as np
import pytest

from repro.physics.qubit import BellPair, BellState, Qubit


class TestQubit:
    def test_normalisation(self):
        qubit = Qubit(alpha=3.0, beta=4.0)
        assert abs(qubit.alpha) ** 2 + abs(qubit.beta) ** 2 == pytest.approx(1.0)

    def test_zero_state_rejected(self):
        with pytest.raises(ValueError):
            Qubit(alpha=0.0, beta=0.0)

    def test_basis_states(self):
        assert Qubit.zero().probability_of_one() == 0.0
        assert Qubit.one().probability_of_one() == 1.0
        assert Qubit.plus().probability_of_one() == pytest.approx(0.5)

    def test_from_bloch_poles(self):
        assert Qubit.from_bloch(0.0, 0.0).fidelity_to(Qubit.zero()) == pytest.approx(1.0)
        assert Qubit.from_bloch(math.pi, 0.0).fidelity_to(Qubit.one()) == pytest.approx(1.0)

    def test_from_bloch_equator(self):
        qubit = Qubit.from_bloch(math.pi / 2, 0.0)
        assert qubit.probability_of_one() == pytest.approx(0.5)

    def test_fidelity_to_self_is_one(self):
        qubit = Qubit(alpha=0.6, beta=0.8j)
        assert qubit.fidelity_to(qubit) == pytest.approx(1.0)

    def test_fidelity_orthogonal_states(self):
        assert Qubit.zero().fidelity_to(Qubit.one()) == pytest.approx(0.0)

    def test_global_phase_invariance_of_fidelity(self):
        a = Qubit(alpha=1.0, beta=1.0)
        b = Qubit(alpha=-1.0, beta=-1.0)
        assert a.fidelity_to(b) == pytest.approx(1.0)

    def test_state_vector(self):
        vector = Qubit.plus().state_vector()
        assert np.allclose(np.abs(vector), [1 / math.sqrt(2)] * 2)


class TestBellState:
    def test_all_states_are_normalised(self):
        for state in BellState:
            vector = state.state_vector()
            assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_states_are_orthogonal(self):
        states = list(BellState)
        for i, a in enumerate(states):
            for b in states[i + 1:]:
                overlap = np.vdot(a.state_vector(), b.state_vector())
                assert abs(overlap) == pytest.approx(0.0, abs=1e-12)

    def test_phi_plus_structure(self):
        vector = BellState.PHI_PLUS.state_vector()
        assert vector[0] == pytest.approx(vector[3])
        assert vector[1] == vector[2] == 0


class TestBellPair:
    def test_requires_distinct_nodes(self):
        with pytest.raises(ValueError):
            BellPair(node_a="alice", node_b="alice")

    def test_fidelity_bounds(self):
        with pytest.raises(ValueError):
            BellPair(node_a="a", node_b="b", fidelity=1.5)

    def test_nodes_and_other_end(self):
        pair = BellPair(node_a="alice", node_b="bob")
        assert pair.nodes == ("alice", "bob")
        assert pair.involves("alice") and pair.involves("bob")
        assert not pair.involves("carol")
        assert pair.other_end("alice") == "bob"
        with pytest.raises(ValueError):
            pair.other_end("carol")

    def test_with_fidelity(self):
        pair = BellPair(node_a="a", node_b="b", fidelity=0.9)
        updated = pair.with_fidelity(0.7)
        assert updated.fidelity == 0.7
        assert pair.fidelity == 0.9  # original unchanged

    def test_usability_threshold(self):
        assert BellPair(node_a="a", node_b="b", fidelity=0.9).is_usable()
        assert not BellPair(node_a="a", node_b="b", fidelity=0.4).is_usable()
