"""Evaluation metrics.

Beyond the per-run aggregates already exposed by
:class:`~repro.simulation.results.SimulationResult`, the paper's evaluation
uses a success-rate *distribution* across SD pairs (Fig. 4) to argue that
OSCAR distributes resources more fairly than the myopic baselines.  This
module provides that histogram, Jain's fairness index (the standard scalar
fairness measure for the proportional-fairness objective the paper adopts)
and small helpers to compare policy summaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.simulation.results import SimulationResult


def _require_finite(array: np.ndarray, what: str) -> None:
    """Reject NaN/inf inputs instead of letting them poison a ratio silently.

    ``NaN < 0`` is false, so a NaN entry used to sail past the sign check and
    surface only as a NaN fairness index several tables downstream.
    """
    if array.size and not np.all(np.isfinite(array)):
        raise ValueError(f"{what} requires finite values (got NaN or inf)")


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σ x)² / (n · Σ x²)`` in ``(0, 1]``.

    1 means perfectly equal allocations; ``1/n`` means a single SD pair gets
    everything.  An empty input raises ``ValueError``; an all-zero input is
    defined here as perfectly fair (nobody got anything).
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("fairness of an empty set is undefined")
    _require_finite(array, "fairness")
    if np.any(array < 0):
        raise ValueError("fairness requires non-negative values")
    total_square = float(np.sum(array) ** 2)
    square_total = float(array.size * np.sum(array**2))
    if square_total == 0:
        return 1.0
    return total_square / square_total


def success_rate_histogram(
    probabilities: Sequence[float],
    bins: int = 10,
    value_range: Tuple[float, float] = (0.0, 1.0),
) -> Tuple[List[float], List[float]]:
    """Histogram of per-request EC success probabilities (Fig. 4).

    Returns ``(bin_edges, fractions)`` where ``fractions`` sums to 1 (unless
    the input is empty, in which case all fractions are 0).
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    array = np.asarray(list(probabilities), dtype=float)
    # A NaN probability falls outside every bin, so the fractions would
    # quietly sum to less than 1 — reject it instead.
    _require_finite(array, "success-rate histogram")
    counts, edges = np.histogram(array, bins=bins, range=value_range)
    total = counts.sum()
    fractions = counts / total if total > 0 else np.zeros_like(counts, dtype=float)
    return list(map(float, edges)), list(map(float, fractions))


def success_rate_quantiles(
    probabilities: Sequence[float],
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
) -> Dict[float, float]:
    """Selected quantiles of the per-request success-rate distribution."""
    array = np.asarray(list(probabilities), dtype=float)
    if array.size == 0:
        return {float(q): 0.0 for q in quantiles}
    _require_finite(array, "success-rate quantiles")
    return {float(q): float(np.quantile(array, q)) for q in quantiles}


def compare_summaries(
    results: Mapping[str, SimulationResult]
) -> Dict[str, Dict[str, float]]:
    """Side-by-side summary of several policies' results (used by reports)."""
    comparison: Dict[str, Dict[str, float]] = {}
    for name, result in results.items():
        summary = result.summary()
        summary["fairness"] = jain_fairness_index(
            result.all_success_probabilities(include_unserved=True)
        ) if result.records else 1.0
        comparison[name] = summary
    return comparison


def relative_improvement(candidate: float, baseline: float) -> float:
    """Relative improvement of ``candidate`` over ``baseline`` (positive = better).

    Defined as ``(candidate − baseline) / |baseline|``; if the baseline is 0
    the improvement is ``inf`` (or 0 when both are 0).
    """
    if baseline == 0:
        return 0.0 if candidate == 0 else float("inf")
    return (candidate - baseline) / abs(baseline)
