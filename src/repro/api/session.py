"""Scenario execution: serial or process-parallel trials, streamed events.

A :class:`Session` runs the trials of a :class:`~repro.api.scenario.Scenario`
and returns a :class:`~repro.api.records.RunRecord`.  Each trial is a pure
function of ``(scenario, trial_index)``: its topology, trace and simulation
streams are derived from the scenario's base seed with
:func:`repro.utils.rng.derive_seed`, exactly as the serial runner has always
done — so running with ``workers > 1`` in a process pool produces results
bit-identical to a serial run of the same scenario.

While trials execute, the session emits the event stream documented in
:mod:`repro.api.events` to its observers (progress reporting, live metrics,
early stop).  In parallel mode, per-slot events are replayed in trial order
once each trial's results arrive, so observer invocation order is
deterministic in both modes.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig

from repro.api.events import (
    EarlyStop,
    RunCompleted,
    RunEvent,
    RunObserver,
    RunStarted,
    SlotCompleted,
    TrialCompleted,
    TrialStarted,
)
from repro.api.records import RunRecord
from repro.api.scenario import Scenario, unsupported_backend_error
from repro.core.multiuser import MultiUserSimulator, ProviderSlotRecord
from repro.serving.scheduler import SERVING_LINEUP_NAME
from repro.simulation.engine import simulate_policies
from repro.simulation.results import SimulationResult
from repro.utils.rng import derive_seed

#: One executed trial: line-up results plus provider records (multi-user only).
TrialOutcome = Tuple[Dict[str, SimulationResult], Tuple[ProviderSlotRecord, ...]]


def execute_trial(
    scenario: Scenario,
    trial: int,
    on_slot: Optional[Callable[[str, object], Optional[bool]]] = None,
) -> TrialOutcome:
    """Run one trial of ``scenario`` (the unit of parallelism).

    The seed derivation mirrors the historical serial runner slot for slot:
    ``derive_seed(base, "graph"|"trace"|"run", trial)`` for comparisons and
    ``derive_seed(base, "graph"|"multiuser", trial)`` for multi-user runs —
    results therefore do not depend on which process executes the trial.
    """
    config = scenario.config
    seed = config.base_seed
    physical = config.physical_model()
    graph = config.build_graph(seed=derive_seed(seed, "graph", trial))
    if scenario.is_serving:
        from repro.serving.scheduler import ServingSimulator
        from repro.simulation.clock import SlotClock

        if scenario.is_multiuser:
            raise ValueError(
                "unsupported combination: the serving layer and a multi-user "
                "tenant line-up are mutually exclusive; drop with_serving() "
                "or the tenant line-up"
            )
        if config.backend != "slotted":
            raise unsupported_backend_error(
                config.backend,
                "the serving layer (with_serving)",
                "use with_backend('slotted') or with_serving(False)",
            )
        simulator = ServingSimulator(
            graph=graph,
            model=config.serving_model(),
            horizon=config.horizon,
            total_budget=config.total_budget,
            initial_queue=config.initial_queue,
            num_candidate_routes=config.num_candidate_routes,
            max_extra_hops=config.max_extra_hops,
            clock=SlotClock(
                attempts_per_slot=config.attempts_per_slot,
                guard_time=config.slot_guard_time_s,
            ),
        )
        serving_cb = None
        if on_slot is not None:
            serving_cb = lambda record: on_slot(SERVING_LINEUP_NAME, record)
        result = simulator.run(
            seed=derive_seed(seed, "serving", trial), on_slot=serving_cb
        )
        return {result.policy_name: result}, ()
    if scenario.is_multiuser:
        if config.backend != "slotted":
            raise unsupported_backend_error(
                config.backend,
                f"a multi-user tenant line-up ({len(scenario.users)} user(s))",
                "use with_backend('slotted') or drop the tenant line-up",
            )
        simulator = MultiUserSimulator(
            graph=graph,
            users=scenario.build_users(),
            horizon=config.horizon,
            num_candidate_routes=config.num_candidate_routes,
            max_extra_hops=config.max_extra_hops,
            realize=config.realize,
            physical=physical,
        )
        provider_cb = None
        if on_slot is not None:
            provider_cb = lambda record: on_slot("provider", record)
        outcome = simulator.run(
            seed=derive_seed(seed, "multiuser", trial), on_slot=provider_cb
        )
        return dict(outcome.user_results), tuple(outcome.provider_records)

    trace = config.build_trace(graph, seed=derive_seed(seed, "trace", trial))
    results = simulate_policies(
        graph,
        trace,
        scenario.build_policies(),
        total_budget=config.total_budget,
        realize=config.realize,
        seed=derive_seed(seed, "run", trial),
        on_slot=on_slot,
        physical=physical,
        backend=config.backend,
        timing=config.timing_model(),
    )
    return results, ()


def _execute_trial_for_pool(scenario: Scenario, trial: int) -> TrialOutcome:
    """Top-level pool target (observers cannot cross process boundaries)."""
    return execute_trial(scenario, trial, on_slot=None)


@dataclass
class Session:
    """Executes scenarios and streams run events to observers.

    Parameters
    ----------
    workers:
        Number of worker processes for trial execution.  ``1`` (default)
        runs serially in-process; results are identical either way.
    observers:
        :class:`~repro.api.events.RunObserver` instances receiving the event
        stream.  Any observer may raise
        :class:`~repro.api.events.EarlyStop` to end the run cleanly.
    stream_slots:
        Emit per-slot events.  With ``workers > 1`` the slot events of a
        trial are replayed after the trial completes.  Disable for very
        large runs where only trial-level progress matters.
    """

    workers: int = 1
    observers: Sequence[RunObserver] = ()
    stream_slots: bool = True

    def run(self, scenario: Scenario) -> RunRecord:
        """Execute every trial of ``scenario`` and return the unified record."""
        scenario.validate()
        trials = scenario.config.trials
        started = time.perf_counter()
        self._emit(
            RunStarted(
                scenario=scenario.name,
                trials=trials,
                workers=self.workers,
                kind=scenario.kind,
                lineup=tuple(scenario.lineup_names()),
            )
        )

        stopped_early = False
        completed: List[TrialOutcome] = []
        try:
            # Both modes append into `completed` as trials finish, so the
            # trials completed before an EarlyStop are preserved.
            if self.workers > 1 and trials > 1:
                self._run_parallel(scenario, trials, completed)
            else:
                self._run_serial(scenario, trials, completed)
        except EarlyStop:
            stopped_early = True

        record = RunRecord(
            scenario=scenario.to_dict(),
            kind=scenario.kind,
            trials=[outcome[0] for outcome in completed],
            provider_trials=[outcome[1] for outcome in completed if outcome[1]],
            meta={
                "workers": self.workers,
                "requested_trials": trials,
                "completed_trials": len(completed),
                "stopped_early": stopped_early,
                "elapsed_seconds": time.perf_counter() - started,
            },
        )
        self._emit(
            RunCompleted(
                scenario=scenario.name,
                trials_completed=len(completed),
                elapsed_seconds=record.meta["elapsed_seconds"],
                stopped_early=stopped_early,
            ),
            swallow_early_stop=True,
        )
        return record

    # ------------------------------------------------------------------ #
    # Execution modes
    # ------------------------------------------------------------------ #
    def _run_serial(
        self, scenario: Scenario, trials: int, completed: List[TrialOutcome]
    ) -> None:
        for trial in range(trials):
            self._emit(TrialStarted(scenario=scenario.name, trial=trial))
            outcome = execute_trial(
                scenario, trial, on_slot=self._live_slot_callback(scenario, trial)
            )
            completed.append(outcome)
            self._emit_trial_completed(scenario, trial, outcome)

    def _run_parallel(
        self, scenario: Scenario, trials: int, completed: List[TrialOutcome]
    ) -> None:
        with ProcessPoolExecutor(max_workers=min(self.workers, trials)) as pool:
            futures = [
                pool.submit(_execute_trial_for_pool, scenario, trial)
                for trial in range(trials)
            ]
            try:
                # Collect in trial order so the event stream (and any
                # early-stop cut-off) is deterministic.
                for trial, future in enumerate(futures):
                    outcome = future.result()
                    self._emit(TrialStarted(scenario=scenario.name, trial=trial))
                    if self.stream_slots:
                        self._replay_slots(scenario, trial, outcome)
                    completed.append(outcome)
                    self._emit_trial_completed(scenario, trial, outcome)
            except EarlyStop:
                for future in futures:
                    future.cancel()
                raise

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _emit(self, event: RunEvent, swallow_early_stop: bool = False) -> None:
        for observer in self.observers:
            try:
                observer.on_event(event)
            except EarlyStop:
                if not swallow_early_stop:
                    raise

    def _live_slot_callback(self, scenario: Scenario, trial: int):
        if not self.stream_slots or not self.observers:
            return None

        def on_slot(policy_name: str, record: object) -> Optional[bool]:
            # EarlyStop propagates out of the engine through here.
            self._emit(
                SlotCompleted(
                    scenario=scenario.name,
                    trial=trial,
                    policy=policy_name,
                    record=record,
                    replayed=False,
                )
            )
            return None

        return on_slot

    def _replay_slots(self, scenario: Scenario, trial: int, outcome: TrialOutcome) -> None:
        results, provider_records = outcome
        if provider_records:
            for record in provider_records:
                self._emit(
                    SlotCompleted(
                        scenario=scenario.name,
                        trial=trial,
                        policy="provider",
                        record=record,
                        replayed=True,
                    )
                )
            return
        for name, result in results.items():
            for record in result.records:
                self._emit(
                    SlotCompleted(
                        scenario=scenario.name,
                        trial=trial,
                        policy=name,
                        record=record,
                        replayed=True,
                    )
                )

    def _emit_trial_completed(
        self, scenario: Scenario, trial: int, outcome: TrialOutcome
    ) -> None:
        results, _ = outcome
        self._emit(
            TrialCompleted(
                scenario=scenario.name,
                trial=trial,
                results={name: result.summary() for name, result in results.items()},
            )
        )


def run_scenario(
    scenario: Scenario,
    workers: int = 1,
    observers: Sequence[RunObserver] = (),
    **session_options,
) -> RunRecord:
    """Run ``scenario`` with a throwaway :class:`Session` (the one-liner API)."""
    session = Session(workers=workers, observers=tuple(observers), **session_options)
    return session.run(scenario)


def compare(
    config: Optional["ExperimentConfig"] = None,
    policies: Sequence = ("oscar", "myopic-adaptive", "myopic-fixed"),
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    workers: int = 1,
    observers: Sequence[RunObserver] = (),
    name: str = "comparison",
) -> RunRecord:
    """Run a multi-trial policy comparison in one call.

    The facade equivalent of the historical
    :func:`repro.experiments.runner.run_comparison`: every trial draws a
    fresh topology and trace, every policy runs on the identical trace.
    ``policies`` accepts anything :meth:`Scenario.with_policies` does.
    """
    from repro.experiments.config import ExperimentConfig

    config = config if config is not None else ExperimentConfig.paper()
    config = config.with_run_overrides(trials, seed)
    scenario = Scenario.from_config(config, name=name).with_policies(*policies)
    return run_scenario(scenario, workers=workers, observers=observers)
